package registry

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MaxGraphNodes and MaxGraphEdges bound graph sizes accepted from untrusted
// sources (generator specs and inline graphs at the service boundary) so a
// single request cannot exhaust memory or stall a handler; dense generators
// additionally cap their candidate-pair loop (maxGenPairs).
const (
	MaxGraphNodes = 1 << 20
	MaxGraphEdges = 1 << 22
)

const (
	maxGenNodes = MaxGraphNodes
	maxGenPairs = 1 << 28
	maxGenEdges = MaxGraphEdges
)

// GenParams carries every knob any registered generator accepts; a
// generator ignores fields outside its Params list.
type GenParams struct {
	// N is the node count (gnp, regular, tree, star, path, cycle,
	// complete); for bipartite it is the left side and N2 the right.
	N  int
	N2 int
	// D is the degree of regular graphs.
	D int
	// P is the edge probability of gnp and bipartite.
	P float64
	// Rows and Cols shape grid graphs.
	Rows, Cols int
	// Spine and Legs shape caterpillar graphs.
	Spine, Legs int
	// Seed drives the generator; MaxW > 1 additionally assigns uniform
	// node weights (seed+1) and edge weights (seed+2) in [1, MaxW].
	Seed uint64
	MaxW int64
}

// GenSpec describes one registered graph generator.
type GenSpec struct {
	Name    string
	Summary string
	// Params lists the GenParams fields this generator reads.
	Params []string
	build  func(p GenParams) (*graph.Graph, error)
}

// Build generates the graph and, when MaxW > 1, assigns uniform random
// node and edge weights — the same convention every entry point shares.
func (s *GenSpec) Build(p GenParams) (*graph.Graph, error) {
	g, err := s.build(p)
	if err != nil {
		return nil, fmt.Errorf("registry: generator %s: %w", s.Name, err)
	}
	if g.N() > maxGenNodes {
		return nil, fmt.Errorf("registry: generator %s: %d nodes exceeds cap %d", s.Name, g.N(), maxGenNodes)
	}
	if p.MaxW > 1 {
		graph.AssignUniformNodeWeights(g, p.MaxW, rng.New(p.Seed+1))
		graph.AssignUniformEdgeWeights(g, p.MaxW, rng.New(p.Seed+2))
	}
	return g, nil
}

func needN(p GenParams) error {
	if p.N <= 0 || p.N > maxGenNodes {
		return fmt.Errorf("n must be in [1, %d], got %d", maxGenNodes, p.N)
	}
	return nil
}

func needP(p GenParams) error {
	if p.P < 0 || p.P > 1 {
		return fmt.Errorf("p must be in [0,1], got %g", p.P)
	}
	return nil
}

var genSpecs = []*GenSpec{
	{
		Name:    "gnp",
		Summary: "Erdős–Rényi G(n, p)",
		Params:  []string{"n", "p", "seed"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			if err := needP(p); err != nil {
				return nil, err
			}
			pairs := float64(p.N) * float64(p.N-1) / 2
			if pairs > maxGenPairs {
				return nil, fmt.Errorf("gnp with n=%d scans %.0f pairs, cap %d", p.N, pairs, maxGenPairs)
			}
			if exp := pairs * p.P; exp > maxGenEdges {
				return nil, fmt.Errorf("gnp with n=%d p=%g expects %.0f edges, cap %d", p.N, p.P, exp, maxGenEdges)
			}
			return graph.GNP(p.N, p.P, rng.New(p.Seed)), nil
		},
	},
	{
		Name:    "gnp-sparse",
		Summary: "Erdős–Rényi G(n, p) via geometric skipping — O(n+m), for large sparse graphs",
		Params:  []string{"n", "p", "seed"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			if err := needP(p); err != nil {
				return nil, err
			}
			if exp := float64(p.N) * float64(p.N-1) / 2 * p.P; exp > maxGenEdges {
				return nil, fmt.Errorf("gnp-sparse with n=%d p=%g expects %.0f edges, cap %d", p.N, p.P, exp, maxGenEdges)
			}
			return graph.GNPSparse(p.N, p.P, rng.New(p.Seed)), nil
		},
	},
	{
		Name:    "regular",
		Summary: "random d-regular graph (configuration model)",
		Params:  []string{"n", "d", "seed"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			if edges := p.N * p.D / 2; edges > maxGenEdges {
				return nil, fmt.Errorf("regular with n=%d d=%d has %d edges, cap %d", p.N, p.D, edges, maxGenEdges)
			}
			return graph.RandomRegular(p.N, p.D, rng.New(p.Seed))
		},
	},
	{
		Name:    "bipartite",
		Summary: "random bipartite graph with n left and n2 right nodes",
		Params:  []string{"n", "n2", "p", "seed"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			if p.N2 <= 0 || p.N2 > maxGenNodes {
				return nil, fmt.Errorf("n2 must be in [1, %d], got %d", maxGenNodes, p.N2)
			}
			if err := needP(p); err != nil {
				return nil, err
			}
			pairs := float64(p.N) * float64(p.N2)
			if pairs > maxGenPairs {
				return nil, fmt.Errorf("bipartite with n=%d n2=%d scans %.0f pairs, cap %d", p.N, p.N2, pairs, maxGenPairs)
			}
			if exp := pairs * p.P; exp > maxGenEdges {
				return nil, fmt.Errorf("bipartite with n=%d n2=%d p=%g expects %.0f edges, cap %d", p.N, p.N2, p.P, exp, maxGenEdges)
			}
			g, _ := graph.RandomBipartite(p.N, p.N2, p.P, rng.New(p.Seed))
			return g, nil
		},
	},
	{
		Name:    "tree",
		Summary: "uniform random labeled tree (Prüfer)",
		Params:  []string{"n", "seed"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			return graph.RandomTree(p.N, rng.New(p.Seed)), nil
		},
	},
	{
		Name:    "star",
		Summary: "star K_{1,n-1} with center 0",
		Params:  []string{"n"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			return graph.Star(p.N), nil
		},
	},
	{
		Name:    "path",
		Summary: "path on n nodes",
		Params:  []string{"n"},
		build: func(p GenParams) (*graph.Graph, error) {
			if err := needN(p); err != nil {
				return nil, err
			}
			return graph.Path(p.N), nil
		},
	},
	{
		Name:    "cycle",
		Summary: "cycle on n ≥ 3 nodes",
		Params:  []string{"n"},
		build: func(p GenParams) (*graph.Graph, error) {
			if p.N < 3 || p.N > maxGenNodes {
				return nil, fmt.Errorf("cycle needs n in [3, %d], got %d", maxGenNodes, p.N)
			}
			return graph.Cycle(p.N), nil
		},
	},
	{
		Name:    "complete",
		Summary: "complete graph K_n",
		Params:  []string{"n"},
		build: func(p GenParams) (*graph.Graph, error) {
			if p.N <= 0 || p.N > 4096 {
				return nil, fmt.Errorf("complete needs n in [1, 4096], got %d", p.N)
			}
			return graph.Complete(p.N), nil
		},
	},
	{
		Name:    "grid",
		Summary: "rows×cols grid graph",
		Params:  []string{"rows", "cols"},
		build: func(p GenParams) (*graph.Graph, error) {
			// Division form so the product bound cannot be bypassed by
			// integer overflow on any int width.
			if p.Rows <= 0 || p.Cols <= 0 || p.Cols > maxGenNodes/p.Rows {
				return nil, fmt.Errorf("grid needs rows, cols > 0 with rows·cols ≤ %d, got %d×%d", maxGenNodes, p.Rows, p.Cols)
			}
			return graph.Grid(p.Rows, p.Cols), nil
		},
	},
	{
		Name:    "caterpillar",
		Summary: "spine path with legs leaves per spine node",
		Params:  []string{"spine", "legs"},
		build: func(p GenParams) (*graph.Graph, error) {
			// Division form so the product bound cannot be bypassed by
			// integer overflow on any int width.
			if p.Spine <= 0 || p.Legs < 0 || p.Legs > maxGenNodes/p.Spine-1 {
				return nil, fmt.Errorf("caterpillar needs spine > 0, legs ≥ 0, total ≤ %d, got spine=%d legs=%d", maxGenNodes, p.Spine, p.Legs)
			}
			return graph.Caterpillar(p.Spine, p.Legs), nil
		},
	},
}

var genByName = func() map[string]*GenSpec {
	m := make(map[string]*GenSpec, len(genSpecs))
	for _, s := range genSpecs {
		if _, dup := m[s.Name]; dup {
			panic("registry: duplicate generator " + s.Name)
		}
		m[s.Name] = s
	}
	return m
}()

// GetGenerator returns the generator registered under name.
func GetGenerator(name string) (*GenSpec, bool) {
	s, ok := genByName[name]
	return s, ok
}

// Generators returns every registered generator, sorted by name.
func Generators() []*GenSpec {
	out := make([]*GenSpec, len(genSpecs))
	copy(out, genSpecs)
	slices.SortFunc(out, func(a, b *GenSpec) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// GeneratorNames returns every registered generator name, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(genSpecs))
	for _, s := range genSpecs {
		names = append(names, s.Name)
	}
	slices.Sort(names)
	return names
}
