package registry

// The engine's determinism contract — the parallel sharded engine executes
// identically to the sequential engine for a fixed seed — was previously only
// stated in comments. This test enforces it for every registered algorithm:
// same graph, same seed, Parallel false vs true, byte-identical results.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSequentialAndParallelEnginesAgreeOnAllAlgorithms(t *testing.T) {
	g := graph.GNP(48, 0.12, rng.New(11))
	graph.AssignUniformNodeWeights(g, 64, rng.New(12))
	graph.AssignUniformEdgeWeights(g, 64, rng.New(13))

	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			run := func(parallel bool) *Result {
				res, err := spec.Run(g, Params{Seed: 7, Parallel: parallel})
				if err != nil {
					t.Fatalf("parallel=%v: %v", parallel, err)
				}
				return res
			}
			seq := run(false)
			par := run(true)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("sequential and parallel runs differ:\nseq: %+v\npar: %+v", seq, par)
			}
			// And sequential re-runs reproduce exactly (seed determinism).
			if again := run(false); !reflect.DeepEqual(seq, again) {
				t.Fatalf("sequential run not reproducible with a fixed seed")
			}
		})
	}
}
