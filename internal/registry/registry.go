// Package registry is the single source of truth mapping algorithm names to
// runnable specs. Every entry point — cmd/distmatch, cmd/sweep, cmd/benchtab,
// the repro facade's Run, and the internal/service job engine — dispatches
// through this table instead of hand-rolling its own switch.
//
// Each Spec wraps one of the facade internals (core, fastmatch, augment,
// nmis) behind the uniform signature
//
//	Run(g *graph.Graph, p Params) (*Result, error)
//
// with zero-valued Params fields meaning "use the documented default".
//
// Layer (DESIGN.md §2, §4): registry sits above every algorithm package and
// below the facade, the service/store layer and the cmd binaries.
//
// Concurrency and ownership: the spec and generator tables are populated at
// init and never mutated, so all lookups (Get, All, Names, GetGenerator, …)
// are safe for concurrent use. Spec.Run and GenSpec.Build are pure per
// call — input graphs are read-only and shareable, each call returns a
// fresh Result/Graph owned by the caller — so one Spec may serve any number
// of concurrent runs.
package registry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"slices"
	"strings"

	"repro/internal/agg"
	"repro/internal/augment"
	"repro/internal/core"
	"repro/internal/fastmatch"
	"repro/internal/graph"
	"repro/internal/nmis"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simul"
)

// Kind classifies what an algorithm outputs.
type Kind int

const (
	// IS algorithms return an independent set of the input graph.
	IS Kind = iota
	// Matching algorithms return a set of edge IDs forming a matching.
	Matching
	// NMIS algorithms return a nearly-maximal independent set plus the
	// count of nodes left uncovered.
	NMIS
)

func (k Kind) String() string {
	switch k {
	case IS:
		return "is"
	case Matching:
		return "matching"
	case NMIS:
		return "nmis"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params carries every knob any registered algorithm accepts. Zero values
// select defaults (Eps 0.5, K 2, Delta 0.1, MIS "luby", Model CONGEST);
// a Spec ignores fields outside its Params list.
type Params struct {
	// Eps is the ε of the (1+ε)/(2+ε) algorithms.
	Eps float64
	// K is the probability factor of the §3/§B algorithms (≥ 2).
	K int
	// Delta is the NMIS failure target δ ∈ (0, 1).
	Delta float64
	// MIS names the MIS black box: "luby", "ghaffari" or "greedyid".
	MIS string
	// Model is CONGEST (default) or LOCAL.
	Model simul.Model
	// Seed fixes all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// MaxRounds, BitsFactor, Parallel and CompressedNeighbors pass through
	// to simul.Config.
	MaxRounds           int
	BitsFactor          int
	Parallel            bool
	CompressedNeighbors bool
	// DeterministicColoring switches Algorithm 3 to the Linial reduction.
	DeterministicColoring bool
}

// Normalized returns p with defaults filled in for zero-valued fields.
func (p Params) Normalized() Params {
	if p.Eps == 0 {
		p.Eps = 0.5
	}
	if p.K == 0 {
		p.K = 2
	}
	if p.Delta == 0 {
		p.Delta = 0.1
	}
	if p.MIS == "" {
		p.MIS = "luby"
	}
	return p
}

// CacheKey renders the algorithm name plus the normalized params the spec
// actually reads, so runs that differ only in an irrelevant knob share a
// cache entry. Engine knobs that can change any execution (round limit,
// CONGEST bit budget, engine choice) are always included.
func (s *Spec) CacheKey(p Params) string {
	p = p.Normalized()
	var b strings.Builder
	b.WriteString(s.Name)
	for _, name := range s.Params {
		switch name {
		case "eps":
			fmt.Fprintf(&b, ",eps=%g", p.Eps)
		case "k":
			fmt.Fprintf(&b, ",k=%d", p.K)
		case "delta":
			fmt.Fprintf(&b, ",delta=%g", p.Delta)
		case "mis":
			fmt.Fprintf(&b, ",mis=%s", p.MIS)
		case "model":
			fmt.Fprintf(&b, ",model=%s", p.Model)
		case "seed":
			fmt.Fprintf(&b, ",seed=%d", p.Seed)
		case "det_coloring":
			fmt.Fprintf(&b, ",det=%t", p.DeterministicColoring)
		}
	}
	fmt.Fprintf(&b, ",maxr=%d,bits=%d,par=%t,cn=%t", p.MaxRounds, p.BitsFactor, p.Parallel, p.CompressedNeighbors)
	return b.String()
}

// ValidEps, ValidK and ValidDelta are the single source of truth for the
// parameter bounds; the facade and the CLIs reuse them to reject explicit
// invalid values that the zero-means-default normalization would absorb.
func ValidEps(eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("eps must be > 0, got %g", eps)
	}
	return nil
}

func ValidK(k int) error {
	if k < 2 {
		return fmt.Errorf("k must be ≥ 2, got %d", k)
	}
	return nil
}

func ValidDelta(delta float64) error {
	if delta <= 0 || delta >= 1 {
		return fmt.Errorf("delta must be in (0,1), got %g", delta)
	}
	return nil
}

func (p Params) validate() error {
	if err := ValidEps(p.Eps); err != nil {
		return err
	}
	if err := ValidK(p.K); err != nil {
		return err
	}
	if err := ValidDelta(p.Delta); err != nil {
		return err
	}
	if p.Model != simul.CONGEST && p.Model != simul.LOCAL {
		return fmt.Errorf("unknown model %v", p.Model)
	}
	return nil
}

func (p Params) simConfig() simul.Config {
	return simul.Config{
		Model:               p.Model,
		Seed:                p.Seed,
		MaxRounds:           p.MaxRounds,
		BitsFactor:          p.BitsFactor,
		Parallel:            p.Parallel,
		CompressedNeighbors: p.CompressedNeighbors,
	}
}

// ParseKind maps a Kind.String() value back to the Kind — the inverse used
// when results round-trip through a wire format (the cluster coordinator
// rebuilds registry.Results from worker responses).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "is":
		return IS, nil
	case "matching":
		return Matching, nil
	case "nmis":
		return NMIS, nil
	default:
		return 0, fmt.Errorf("registry: unknown result kind %q (want is, matching or nmis)", s)
	}
}

// ParseModel maps a case-insensitive model name to a simul.Model.
func ParseModel(s string) (simul.Model, error) {
	switch strings.ToLower(s) {
	case "", "congest":
		return simul.CONGEST, nil
	case "local":
		return simul.LOCAL, nil
	default:
		return 0, fmt.Errorf("registry: unknown model %q (want congest or local)", s)
	}
}

// Cost summarizes the communication cost of a distributed execution; the
// facade re-exports it as repro.CostStats and cmd/reprod serializes it.
type Cost struct {
	Rounds         int `json:"rounds"`
	RealRounds     int `json:"real_rounds"`
	Messages       int `json:"messages"`
	Bits           int `json:"bits"`
	MaxMessageBits int `json:"max_msg_bits"`
	BitBudget      int `json:"bit_budget"`
}

func costOf(virtual int, m simul.Metrics) Cost {
	return Cost{
		Rounds:         virtual,
		RealRounds:     m.Rounds,
		Messages:       m.Messages,
		Bits:           m.TotalBits,
		MaxMessageBits: m.MaxMessageBits,
		BitBudget:      m.BitBudget,
	}
}

// Result is the uniform answer of any registered algorithm. InSet is set for
// IS/NMIS kinds, Edges for Matching; Uncovered only for NMIS.
type Result struct {
	Kind      Kind
	InSet     []bool
	Edges     []int
	Weight    int64
	Uncovered int
	Cost      Cost
	// Trace is the run's telemetry summary, attached to every live run
	// while obs.Enabled() (nil otherwise, and nil on results deserialized
	// from peers that ran with telemetry off). The engines count
	// unconditionally; this field only gates what is *reported*, so
	// toggling it cannot perturb an execution.
	Trace *obs.RoundTrace
}

// traceOf assembles the RoundTrace for an engine-backed result, nil when
// telemetry attachment is disabled. Rounds is floored at 1: a completed run
// executed at least one (possibly communication-free) round in LOCAL-model
// terms, so downstream consumers can rely on rounds > 0.
func traceOf(virtual int, m simul.Metrics, memo agg.MemoStats) *obs.RoundTrace {
	if !obs.Enabled() {
		return nil
	}
	rounds := m.Rounds
	if rounds < 1 {
		rounds = 1
	}
	return &obs.RoundTrace{
		Rounds:            rounds,
		VirtualRounds:     virtual,
		Messages:          int64(m.Messages),
		Bits:              int64(m.TotalBits),
		PeakRoundMessages: int64(m.PeakRoundMessages),
		PeakRoundBits:     int64(m.PeakRoundBits),
		PeakActive:        m.PeakActive,
		CompactMoves:      int64(m.CompactMoves),
		MemoHits:          memo.Hits,
		MemoMisses:        memo.Misses,
	}
}

// Size returns the independent-set cardinality or the matching size.
func (r *Result) Size() int {
	if r.Kind == Matching {
		return len(r.Edges)
	}
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// Spec describes one registered algorithm.
type Spec struct {
	Name string
	Kind Kind
	// Summary is a one-line human description (paper theorem included).
	Summary string
	// Params lists the Params fields this algorithm reads, for listings.
	Params []string
	run    func(g *graph.Graph, p Params) (*Result, error)
}

// Validate normalizes p and reports whether the spec can run with it.
func (s *Spec) Validate(p Params) error { return p.Normalized().validate() }

// Run executes the algorithm on g with normalized params. Every successful
// live run carries a Trace while telemetry is enabled: engine-backed specs
// attach rich traces themselves; this wrapper backfills the rest (sequential
// and non-simulated algorithms) from the Cost summary.
func (s *Spec) Run(g *graph.Graph, p Params) (*Result, error) {
	p = p.Normalized()
	if err := p.validate(); err != nil {
		return nil, err
	}
	res, err := s.run(g, p)
	if err != nil {
		return nil, err
	}
	if res.Trace == nil && obs.Enabled() {
		rounds := res.Cost.RealRounds
		if rounds < 1 {
			rounds = 1 // a completed sequential run counts as one LOCAL round
		}
		res.Trace = &obs.RoundTrace{
			Rounds:        rounds,
			VirtualRounds: res.Cost.Rounds,
			Messages:      int64(res.Cost.Messages),
			Bits:          int64(res.Cost.Bits),
		}
	}
	return res, nil
}

var specs = []*Spec{
	{
		Name:    "seq-maxis",
		Kind:    IS,
		Summary: "Algorithm 1: sequential local-ratio ∆-approximate MaxIS (§2.1)",
		Params:  []string{},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			in := core.SequentialLocalRatio(g, core.GreedyPick)
			return &Result{Kind: IS, InSet: in, Weight: g.SetWeight(in)}, nil
		},
	},
	{
		Name:    "maxis",
		Kind:    IS,
		Summary: "Algorithm 2: distributed ∆-approximate MaxIS, O(MIS·log W) rounds (Thm 2.3)",
		Params:  []string{"mis", "seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := core.DistributedMaxIS(g, p.MIS, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: IS, InSet: res.InSet, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "maxis-det",
		Kind:    IS,
		Summary: "Algorithm 3: coloring + color-priority ∆-approximate MaxIS (§2.3)",
		Params:  []string{"seed", "model", "det_coloring"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := core.ColoringMaxIS(g, p.DeterministicColoring, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: IS, InSet: res.InSet, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds+res.ColoringRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds+res.ColoringRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "mwm2",
		Kind:    Matching,
		Summary: "2-approximate MWM: Algorithm 2 on L(G) via Theorem 2.8 (Thm 2.10)",
		Params:  []string{"mis", "seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := core.DistributedMWM2(g, p.MIS, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: Matching, Edges: res.Edges, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "mwm2-det",
		Kind:    Matching,
		Summary: "2-approximate MWM: Algorithm 3 on L(G), deterministic reduction (Thm 2.10)",
		Params:  []string{"seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := core.ColoringMWM2(g, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: Matching, Edges: res.Edges, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds+res.ColoringRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds+res.ColoringRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "fastmcm",
		Kind:    Matching,
		Summary: "(2+ε)-approximate MCM in O(log∆/loglog∆)-style rounds (Thm 3.2)",
		Params:  []string{"eps", "k", "seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := fastmatch.MCM2Eps(g, p.Eps, p.K, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: Matching, Edges: res.Edges, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "fastmwm",
		Kind:    Matching,
		Summary: "(2+ε)-approximate MWM via weight bucketing + refinement (§B.1)",
		Params:  []string{"eps", "k", "seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := fastmatch.MWM2Eps(g, p.Eps, p.K, p.simConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Kind: Matching, Edges: res.Edges, Weight: res.Weight,
				Cost:  costOf(res.VirtualRounds, res.Metrics),
				Trace: traceOf(res.VirtualRounds, res.Metrics, res.Memo)}, nil
		},
	},
	{
		Name:    "oneeps",
		Kind:    Matching,
		Summary: "(1+ε)-approximate MCM via Hopcroft–Karp phases (Thm B.4, LOCAL)",
		Params:  []string{"eps", "k", "seed"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := augment.OneEpsLocal(g, augment.OneEpsParams{Eps: p.Eps, K: p.K}, rng.New(p.Seed))
			if err != nil {
				return nil, err
			}
			return matchingFromIDs(g, res.Matching, res.Rounds), nil
		},
	},
	{
		Name:    "oneeps-congest",
		Kind:    Matching,
		Summary: "(1+ε)-approximate MCM, CONGEST construction of Appendix B.3",
		Params:  []string{"eps", "k", "seed"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := augment.OneEpsCongest(g, augment.CongestOneEpsParams{Eps: p.Eps, K: p.K}, rng.New(p.Seed))
			if err != nil {
				return nil, err
			}
			return matchingFromIDs(g, res.Matching, res.Rounds), nil
		},
	},
	{
		Name:    "proposal",
		Kind:    Matching,
		Summary: "(2+ε)-approximate MCM via the Appendix B.4 proposal algorithm",
		Params:  []string{"eps", "k", "seed"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := fastmatch.Proposal(g, p.Eps, p.K, rng.New(p.Seed))
			if err != nil {
				return nil, err
			}
			return &Result{Kind: Matching, Edges: res.Edges, Weight: res.Weight,
				Cost: Cost{Rounds: res.VirtualRounds, RealRounds: res.VirtualRounds}}, nil
		},
	},
	{
		Name:    "nmis",
		Kind:    NMIS,
		Summary: "§3.1 nearly-maximal independent set with factor K, target δ (Thm 3.1)",
		Params:  []string{"k", "delta", "seed", "model"},
		run: func(g *graph.Graph, p Params) (*Result, error) {
			res, err := nmis.Run(g, nmis.Params{K: p.K, Delta: p.Delta}, p.simConfig())
			if err != nil {
				return nil, err
			}
			in := res.InSetVector()
			return &Result{Kind: NMIS, InSet: in, Weight: g.SetWeight(in),
				Uncovered: res.UncoveredCount(),
				Cost:      costOf(res.VirtualRounds, res.Metrics),
				Trace:     traceOf(res.VirtualRounds, res.Metrics, res.Memo)}, nil
		},
	},
}

func matchingFromIDs(g *graph.Graph, edges []int, rounds int) *Result {
	var w int64
	for _, id := range edges {
		w += g.EdgeWeight(id)
	}
	return &Result{Kind: Matching, Edges: edges, Weight: w,
		Cost: Cost{Rounds: rounds, RealRounds: rounds}}
}

var byName = func() map[string]*Spec {
	m := make(map[string]*Spec, len(specs))
	for _, s := range specs {
		if _, dup := m[s.Name]; dup {
			panic("registry: duplicate algorithm " + s.Name)
		}
		m[s.Name] = s
	}
	return m
}()

// Get returns the spec registered under name.
func Get(name string) (*Spec, bool) {
	s, ok := byName[name]
	return s, ok
}

// Register adds a runnable spec under name at runtime and returns a function
// that removes it again. It exists for tests that need a controllable
// algorithm — e.g. one that parks on a channel until the test releases it,
// replacing timing-based "big graph ≈ slow job" blockers. The registry
// tables take no lock, so Register/unregister must not race concurrent
// lookups: call them while no jobs are being submitted. Duplicate names
// panic, like duplicates in the static table.
func Register(name string, kind Kind, run func(g *graph.Graph, p Params) (*Result, error)) func() {
	if _, dup := byName[name]; dup {
		panic("registry: duplicate algorithm " + name)
	}
	s := &Spec{Name: name, Kind: kind, Summary: "runtime-registered (testing)", run: run}
	specs = append(specs, s)
	byName[name] = s
	return func() {
		delete(byName, name)
		specs = slices.DeleteFunc(specs, func(x *Spec) bool { return x == s })
	}
}

// All returns every registered spec, sorted by name.
func All() []*Spec {
	out := make([]*Spec, len(specs))
	copy(out, specs)
	slices.SortFunc(out, func(a, b *Spec) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	slices.Sort(names)
	return names
}

// Fingerprint returns a stable content hash of g (topology plus weights),
// used to key the service's result cache. It hashes the graph's CSR arrays
// and weight vectors directly in binary — no text encoding pass — so
// fingerprinting large graphs costs one linear scan.
func Fingerprint(g *graph.Graph) string {
	offsets, neighbors, edgeIDs := g.CSR()
	buf := make([]byte, 0, 16+4*(len(offsets)+len(neighbors)+len(edgeIDs))+8*(g.N()+g.M()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.N()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.M()))
	for _, arr := range [][]int32{offsets, neighbors, edgeIDs} {
		for _, x := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
	}
	for v := 0; v < g.N(); v++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.NodeWeight(v)))
	}
	for id := 0; id < g.M(); id++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.EdgeWeight(id)))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:16])
}
