package registry

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func testGraph() *graph.Graph {
	g := graph.GNP(16, 0.25, rng.New(1))
	graph.AssignUniformNodeWeights(g, 50, rng.New(2))
	graph.AssignUniformEdgeWeights(g, 50, rng.New(3))
	return g
}

// TestCompleteness asserts that every facade algorithm is registered and
// that each registered spec runs on a small graph, producing an answer
// consistent with its declared kind.
func TestCompleteness(t *testing.T) {
	want := []string{
		"fastmcm", "fastmwm", "maxis", "maxis-det", "mwm2", "mwm2-det",
		"nmis", "oneeps", "oneeps-congest", "proposal", "seq-maxis",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registered algorithms = %v, want %v", got, want)
	}

	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := testGraph()
			res, err := spec.Run(g, Params{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if res.Kind != spec.Kind {
				t.Fatalf("result kind %v, want %v", res.Kind, spec.Kind)
			}
			switch res.Kind {
			case IS, NMIS:
				if len(res.InSet) != g.N() {
					t.Fatalf("InSet length %d, want %d", len(res.InSet), g.N())
				}
				if !g.IsIndependentSet(res.InSet) {
					t.Fatal("result is not an independent set")
				}
				if res.Weight != g.SetWeight(res.InSet) {
					t.Fatalf("weight %d, want %d", res.Weight, g.SetWeight(res.InSet))
				}
			case Matching:
				if !g.IsMatching(res.Edges) {
					t.Fatal("result is not a matching")
				}
				if res.Weight != g.MatchingWeight(res.Edges) {
					t.Fatalf("weight %d, want %d", res.Weight, g.MatchingWeight(res.Edges))
				}
			}
			if res.Size() < 0 {
				t.Fatal("negative size")
			}
		})
	}
}

func TestRunDeterminism(t *testing.T) {
	for _, name := range []string{"maxis", "mwm2", "nmis"} {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		a, err := spec.Run(testGraph(), Params{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Run(testGraph(), Params{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: equal seeds gave different results", name)
		}
	}
}

func TestParamValidation(t *testing.T) {
	spec, _ := Get("fastmcm")
	if _, err := spec.Run(testGraph(), Params{Eps: -1}); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := spec.Run(testGraph(), Params{K: 1}); err == nil {
		t.Fatal("k=1 accepted")
	}
	nm, _ := Get("nmis")
	if _, err := nm.Run(testGraph(), Params{Delta: 1.5}); err == nil {
		t.Fatal("delta=1.5 accepted")
	}
}

func TestGenerators(t *testing.T) {
	cases := map[string]GenParams{
		"gnp":         {N: 20, P: 0.2, Seed: 1},
		"gnp-sparse":  {N: 40, P: 0.2, Seed: 1},
		"regular":     {N: 16, D: 4, Seed: 2},
		"bipartite":   {N: 8, N2: 8, P: 0.3, Seed: 3},
		"tree":        {N: 12, Seed: 4},
		"star":        {N: 10},
		"path":        {N: 10},
		"cycle":       {N: 10},
		"complete":    {N: 8},
		"grid":        {Rows: 4, Cols: 5},
		"caterpillar": {Spine: 5, Legs: 3},
	}
	names := GeneratorNames()
	if len(names) != len(cases) {
		t.Fatalf("have %d generators, test covers %d", len(names), len(cases))
	}
	for _, name := range names {
		p, ok := cases[name]
		if !ok {
			t.Fatalf("no test params for generator %s", name)
		}
		spec, ok := GetGenerator(name)
		if !ok {
			t.Fatalf("generator %s not registered", name)
		}
		p.MaxW = 16
		g, err := spec.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.MaxNodeWeight() <= 1 && g.N() > 2 {
			t.Fatalf("%s: MaxW weights not applied", name)
		}
	}
	if gs, _ := GetGenerator("gnp"); gs != nil {
		if _, err := gs.Build(GenParams{N: -1, P: 0.5}); err == nil {
			t.Fatal("negative n accepted")
		}
		if _, err := gs.Build(GenParams{N: 10, P: 2}); err == nil {
			t.Fatal("p=2 accepted")
		}
		// Dense requests must be rejected before any work is done, both on
		// the pair-scan bound and on the expected-edge bound.
		if _, err := gs.Build(GenParams{N: maxGenNodes, P: 1}); err == nil {
			t.Fatal("gnp pair-scan cap not enforced")
		}
		if _, err := gs.Build(GenParams{N: 20000, P: 1}); err == nil {
			t.Fatal("gnp expected-edge cap not enforced")
		}
	}
	if gs, _ := GetGenerator("bipartite"); gs != nil {
		if _, err := gs.Build(GenParams{N: maxGenNodes, N2: maxGenNodes, P: 0.001}); err == nil {
			t.Fatal("bipartite pair-scan cap not enforced")
		}
	}
	if gs, _ := GetGenerator("regular"); gs != nil {
		if _, err := gs.Build(GenParams{N: maxGenNodes, D: 100}); err == nil {
			t.Fatal("regular edge cap not enforced")
		}
	}
}

func TestFingerprint(t *testing.T) {
	a, b := testGraph(), testGraph()
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical graphs fingerprint differently")
	}
	b.SetNodeWeight(0, b.NodeWeight(0)+1)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("weight change did not change fingerprint")
	}
}
