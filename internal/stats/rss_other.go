//go:build !linux

package stats

// PeakRSS reports the process's peak resident set size in bytes. Only the
// linux build reads it (from /proc/self/status); elsewhere it returns -1 and
// callers print the value as unavailable.
func PeakRSS() int64 { return -1 }
