package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	odd := Summarize([]float64{5, 1, 9})
	if odd.Median != 5 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero not NaN")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[3], "2.500") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}
