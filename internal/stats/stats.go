// Package stats provides the small statistical and tabular helpers used by
// the benchmark harness, the batch engine's per-group aggregates, and the
// command-line tools.
//
// Layer (DESIGN.md §2): stats is a leaf substrate with no repository
// imports; the service, httpapi and cmd layers all consume it.
//
// Concurrency and ownership: Summarize and Ratio are pure functions and
// safe anywhere; a Table is a mutable single-goroutine value — build and
// render it on one goroutine.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample. The JSON tags serve the batch API, which
// reports per-group aggregates as Summaries.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs; the zero Summary for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Ratio returns a/b, or NaN when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	rows := append([][]string{t.header}, t.rows...)
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
