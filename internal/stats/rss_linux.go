//go:build linux

package stats

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSS reports the process's peak resident set size in bytes, read from
// the VmHWM line of /proc/self/status. It returns -1 when the value cannot
// be determined. The high-water mark is monotone over the process lifetime,
// so callers measuring one phase of a run should treat it as a ceiling over
// everything executed so far, not a per-phase delta.
func PeakRSS() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	for _, line := range bytes.Split(blob, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return -1
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return -1
		}
		return kb << 10
	}
	return -1
}
