package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

func TestRandomGreedyProperColoring(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 12; trial++ {
		g := graph.GNP(40, 0.15, r.Split(uint64(trial)))
		res, err := RandomGreedy(g, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, c := range res.Colors {
			if c >= g.MaxDegree()+1 {
				t.Fatalf("trial %d: color %d exceeds ∆+1 = %d", trial, c, g.MaxDegree()+1)
			}
		}
	}
}

func TestRandomGreedyStructured(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star":     graph.Star(30),
		"complete": graph.Complete(15),
		"path":     graph.Path(20),
		"cycle":    graph.Cycle(21),
		"edgeless": graph.NewBuilder(6).MustBuild(),
	} {
		res, err := RandomGreedy(g, simul.Config{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// A complete graph needs exactly n distinct colors.
	g := graph.Complete(8)
	res, _ := RandomGreedy(g, simul.Config{Seed: 3})
	seen := map[int]bool{}
	for _, c := range res.Colors {
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Fatalf("K8 colored with %d colors, want 8", len(seen))
	}
}

func TestRandomGreedyRoundScaling(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{64, 256, 1024} {
		g := graph.GNP(n, 6.0/float64(n), r.Split(uint64(n)))
		res, err := RandomGreedy(g, simul.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if res.VirtualRounds > 20*(bitsLen(n)+2) {
			t.Errorf("n=%d: %d rounds, want O(log n)", n, res.VirtualRounds)
		}
	}
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

func TestRandomGreedyOnLineIsEdgeColoring(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNP(16, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		res, err := RandomGreedyOnLine(g, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		// Proper edge coloring: incident edges get distinct colors.
		for v := 0; v < g.N(); v++ {
			seen := map[int]bool{}
			for _, id := range g.IncidentEdges(v) {
				c := res.Colors[id]
				if seen[c] {
					t.Fatalf("trial %d: node %d has two incident edges of color %d", trial, v, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestRandomGreedyRunsInCongest(t *testing.T) {
	g := graph.GNP(64, 0.1, rng.New(6))
	if _, err := RandomGreedy(g, simul.Config{Seed: 7, Model: simul.CONGEST}); err != nil {
		t.Fatalf("CONGEST violation: %v", err)
	}
}

func TestLinialDeterministic(t *testing.T) {
	r := rng.New(8)
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(50),
		"cycle":    graph.Cycle(33),
		"star":     graph.Star(12),
		"grid":     graph.Grid(6, 7),
		"gnp":      graph.GNP(60, 0.08, r),
		"tree":     graph.RandomTree(80, r),
		"complete": graph.Complete(9),
	}
	for name, g := range graphs {
		res, err := LinialDeterministic(g, simul.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range res.Colors {
			if c > g.MaxDegree() {
				t.Fatalf("%s: color %d exceeds ∆ = %d", name, c, g.MaxDegree())
			}
		}
	}
}

func TestLinialIsDeterministic(t *testing.T) {
	g := graph.GNP(40, 0.1, rng.New(9))
	a, err := LinialDeterministic(g, simul.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinialDeterministic(g, simul.Config{Seed: 999, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("deterministic coloring depends on the seed or engine")
		}
	}
}

func TestLinialCongestCompliant(t *testing.T) {
	g := graph.GNP(128, 0.05, rng.New(10))
	if _, err := LinialDeterministic(g, simul.Config{Model: simul.CONGEST}); err != nil {
		t.Fatalf("CONGEST violation: %v", err)
	}
}

func TestReductionScheduleShrinks(t *testing.T) {
	steps, m := reductionSchedule(1<<20, 8)
	if len(steps) == 0 {
		t.Fatal("no reduction steps for n = 2^20")
	}
	if m >= 1<<20 {
		t.Fatalf("schedule did not shrink colors: m = %d", m)
	}
	// log* behaviour: a handful of steps suffice even for huge n.
	if len(steps) > 6 {
		t.Fatalf("suspiciously many reduction steps: %d", len(steps))
	}
}

func TestVerifyRejectsBadColorings(t *testing.T) {
	g := graph.Path(3)
	if err := Verify(g, []int{0, 0, 1}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := Verify(g, []int{0, 1}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := Verify(g, []int{0, -1, 0}); err == nil {
		t.Fatal("uncolored node accepted")
	}
	if err := Verify(g, []int{0, 1, 0}); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
}

func TestPrimeHelpers(t *testing.T) {
	for k, want := range map[int]int{0: 2, 2: 2, 3: 3, 4: 5, 14: 17, 25: 29} {
		if got := nextPrime(k); got != want {
			t.Errorf("nextPrime(%d) = %d, want %d", k, got, want)
		}
	}
	if isPrime(1) || isPrime(9) || !isPrime(97) {
		t.Error("isPrime broken")
	}
}
