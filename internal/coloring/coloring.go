// Package coloring implements the (∆+1)-coloring black boxes consumed by the
// paper's Algorithm 3 (§2.3).
//
// Two algorithms are provided:
//
//   - RandomGreedy: the classical randomized free-palette coloring — every
//     round each uncolored node proposes a uniformly random color from its
//     palette minus the colors its neighborhood already fixed, and keeps the
//     proposal if no neighbor proposed the same color. O(log n) rounds
//     w.h.p. It is a local aggregation algorithm (palette occupancy travels
//     as BitOr masks), so it also colors line graphs through agg.RunLine.
//
//   - LinialDeterministic: Linial's iterated polynomial color reduction
//     [Lin87] down to O((d·∆)²) colors in O(log* n) exchanges, followed by
//     the standard one-color-class-per-round reduction to ∆+1. Fully
//     deterministic; it substitutes for the O(∆ + log* n) algorithm of
//     [BEK14, Bar15] that the paper cites (see DESIGN.md §3).
//
// Layer (DESIGN.md §2): coloring is a black-box layer beside internal/mis,
// above the internal/simul engine (and internal/agg for the line-graph
// form), below internal/core.
//
// Concurrency and ownership: each call runs one simulation to completion on
// the calling goroutine; input graphs are read-only and may be shared, and
// the returned Result (color vector included) is owned by the caller.
package coloring

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/simul"
)

// Result of a coloring computation.
type Result struct {
	// Colors[v] ∈ [0, NumColors). Indexed by node under RandomGreedy /
	// LinialDeterministic, by edge ID under RandomGreedyOnLine.
	Colors    []int
	NumColors int
	// VirtualRounds is the algorithm's round complexity; Metrics.Rounds the
	// real network rounds (they differ by 2× for the line runtime).
	VirtualRounds int
	Metrics       simul.Metrics
	// Memo carries the line runtime's exchange-folding hit/miss counts
	// (zero for the node-level colorings).
	Memo agg.MemoStats
}

// Verify returns an error unless colors is a proper coloring of g.
func Verify(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d nodes", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("coloring: node %d uncolored (%d)", v, c)
		}
	}
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return fmt.Errorf("coloring: edge %v monochromatic with color %d", e, colors[e.U])
		}
	}
	return nil
}

const chunkBits = 62 // palette bits carried per BitOr mask

// paletteMachine is the randomized free-palette coloring as an agg.Machine.
// Data layout: [state, candidate, color]; state 0 = undecided, 1 = decided.
// The query plan depends only on the global palette size, so one plan (built
// by palettePlan) is shared by every machine of a run.
type paletteMachine struct {
	palette int         // global palette size (∆+1 of the virtual graph)
	plan    []agg.Query // shared precomputed plan: 2 masks per chunk + allDecided
	free    []int       // reusable redraw scratch
}

func (m *paletteMachine) Fields() int { return 3 }

// palettePlan precomputes the per-round query set for the given palette size:
// per 62-bit palette chunk one BitOr mask of undecided neighbors' proposals
// and one of decided neighbors' fixed colors, plus an And over the decided
// flags. The closures capture only the chunk bounds, so the plan is immutable
// and safely shared across machines.
func palettePlan(palette int) []agg.Query {
	chunks := (palette + chunkBits - 1) / chunkBits
	qs := make([]agg.Query, 0, 2*chunks+1)
	for c := 0; c < chunks; c++ {
		lo := int64(c * chunkBits)
		hi := lo + chunkBits
		// Candidates proposed by undecided neighbors this round.
		qs = append(qs, agg.Query{Agg: agg.BitOr, Proj: func(nd agg.Data) int64 {
			if nd[0] == 0 && nd[1] >= lo && nd[1] < hi {
				return 1 << uint(nd[1]-lo)
			}
			return 0
		}})
		// Colors fixed by decided neighbors.
		qs = append(qs, agg.Query{Agg: agg.BitOr, Proj: func(nd agg.Data) int64 {
			if nd[0] == 1 && nd[2] >= lo && nd[2] < hi {
				return 1 << uint(nd[2]-lo)
			}
			return 0
		}})
	}
	qs = append(qs, agg.Query{Agg: agg.And, Proj: func(nd agg.Data) int64 {
		return nd[0] // all neighbors decided?
	}})
	return qs
}

func (m *paletteMachine) Init(info *agg.NodeInfo, d agg.Data) {
	d[0] = 0
	d[1] = int64(info.Rand.Intn(min(info.Degree+1, m.palette)))
	d[2] = -1
}

func (m *paletteMachine) Queries(info *agg.NodeInfo, t int, data agg.Data, qs []agg.Query) []agg.Query {
	return append(qs, m.plan...)
}

func (m *paletteMachine) maskHas(results []int64, stride, value int) bool {
	chunk := value / chunkBits
	return results[2*chunk+stride]&(1<<uint(value%chunkBits)) != 0
}

func (m *paletteMachine) Update(info *agg.NodeInfo, t int, data agg.Data, results []int64) (bool, any) {
	allDecided := results[len(results)-1] != 0
	if data[0] == 1 {
		// Already colored; linger until every neighbor is decided so they
		// can keep reading our color, then leave.
		if allDecided {
			return true, int(data[2])
		}
		return false, nil
	}
	cand := int(data[1])
	conflict := m.maskHas(results, 0, cand) || m.maskHas(results, 1, cand)
	if !conflict {
		data[0] = 1
		data[2] = data[1]
		return false, nil // stay visible; halt once neighbors are done
	}
	// Redraw from the palette minus decided neighbors' colors. The palette of
	// size deg+1 always has a free color.
	limit := min(info.Degree+1, m.palette)
	m.free = m.free[:0]
	for c := 0; c < limit; c++ {
		if !m.maskHas(results, 1, c) {
			m.free = append(m.free, c)
		}
	}
	if len(m.free) == 0 {
		// Cannot happen on a correct run; fall back to full palette so the
		// failure is visible as non-termination rather than a panic.
		m.free = append(m.free, info.Rand.Intn(m.palette))
	}
	data[1] = int64(m.free[info.Rand.Intn(len(m.free))])
	return false, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomGreedy colors g with at most ∆+1 colors in O(log n) rounds w.h.p.
func RandomGreedy(g *graph.Graph, cfg simul.Config) (*Result, error) {
	palette := g.MaxDegree() + 1
	plan := palettePlan(palette)
	res, err := agg.RunDirect(g, cfg, func(v int) agg.Machine {
		return &paletteMachine{palette: palette, plan: plan}
	})
	if err != nil {
		return nil, err
	}
	return paletteResult(res, g.N(), palette)
}

// RandomGreedyOnLine colors the line graph L(g) — i.e., properly edge-colors
// g with at most 2∆-1 colors — through the Theorem 2.8 simulation. Colors are
// indexed by edge ID.
func RandomGreedyOnLine(g *graph.Graph, cfg simul.Config) (*Result, error) {
	palette := maxLineDegree(g) + 1
	plan := palettePlan(palette)
	res, err := agg.RunLine(g, cfg, func(e int) agg.Machine {
		return &paletteMachine{palette: palette, plan: plan}
	})
	if err != nil {
		return nil, err
	}
	return paletteResult(res, g.M(), palette)
}

func maxLineDegree(g *graph.Graph) int {
	d := 0
	for _, e := range g.Edges() {
		ld := g.Degree(e.U) + g.Degree(e.V) - 2
		if ld > d {
			d = ld
		}
	}
	return d
}

func paletteResult(res *agg.Result, n, palette int) (*Result, error) {
	out := &Result{
		Colors:        make([]int, n),
		NumColors:     palette,
		VirtualRounds: res.VirtualRounds,
		Metrics:       res.Metrics,
		Memo:          res.Memo,
	}
	for i, o := range res.Outputs {
		c, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("coloring: node %d output %v, want int", i, o)
		}
		out.Colors[i] = c
	}
	return out, nil
}
