package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/simul"
)

// LinialDeterministic computes a (∆+1)-coloring of g deterministically:
//
//  1. Start from the unique IDs (an n-coloring).
//  2. Iterate Linial's polynomial reduction: given an m-coloring, encode each
//     color as a degree-≤d polynomial over F_q (q prime, q > d·∆,
//     q^{d+1} ≥ m). Two distinct polynomials agree on at most d points, so
//     among q > d·∆ evaluation points each node finds one where it differs
//     from all ∆ neighbors; the new color (x, p(x)) lives in [q²]. O(log* n)
//     iterations reach a fixed point of O((d∆)²) colors.
//  3. Reduce one color class per round: the class with the largest remaining
//     color recolors greedily into [0, ∆], which is always possible because a
//     node has at most ∆ neighbors. Color classes are independent sets, so
//     simultaneous recoloring is safe.
//
// The total round complexity is O(log* n + ∆² log² ∆): our documented
// substitute for the O(∆ + log* n) of [BEK14, Bar15] (DESIGN.md §3). Every
// message carries a single color of O(log n) bits.
func LinialDeterministic(g *graph.Graph, cfg simul.Config) (*Result, error) {
	delta := g.MaxDegree()
	// Precompute the globally agreed reduction schedule: the sequence of
	// (q, d) parameters and the fixed-point color count. All nodes derive it
	// from (n, ∆), which are global knowledge.
	schedule, finalM := reductionSchedule(g.N(), delta)
	autos := make([]*linialNode, g.N())
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		autos[v] = &linialNode{
			color:    v,
			delta:    delta,
			schedule: schedule,
			m:        finalM,
		}
		return autos[v]
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Colors:        make([]int, g.N()),
		NumColors:     delta + 1,
		VirtualRounds: res.Metrics.Rounds,
		Metrics:       res.Metrics,
	}
	for v, o := range res.Outputs {
		c, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("coloring: node %d output %v, want int", v, o)
		}
		out.Colors[v] = c
	}
	return out, nil
}

// reductionStep holds one Linial iteration's field parameters.
type reductionStep struct {
	q, d int
}

// reductionSchedule computes the parameters of each polynomial reduction
// iteration for an n-node graph of maximum degree delta, stopping at the
// fixed point, and returns the final color count.
func reductionSchedule(n, delta int) ([]reductionStep, int) {
	var steps []reductionStep
	m := n
	for {
		q, d, ok := linialParams(m, delta)
		if !ok || q*q >= m {
			return steps, m
		}
		steps = append(steps, reductionStep{q: q, d: d})
		m = q * q
	}
}

// linialParams picks the smallest usable (q, d): q prime, q > d·delta, and
// q^{d+1} ≥ m so every color has a distinct polynomial encoding.
func linialParams(m, delta int) (q, d int, ok bool) {
	for d = 1; d <= 64; d++ {
		q = nextPrime(d*delta + 2)
		// Check q^{d+1} ≥ m without overflow.
		pow := 1
		enough := false
		for i := 0; i <= d; i++ {
			pow *= q
			if pow >= m {
				enough = true
				break
			}
		}
		if enough {
			return q, d, true
		}
	}
	return 0, 0, false
}

func nextPrime(k int) int {
	if k < 2 {
		return 2
	}
	for x := k; ; x++ {
		if isPrime(x) {
			return x
		}
	}
}

func isPrime(x int) bool {
	if x < 2 {
		return false
	}
	for f := 2; f*f <= x; f++ {
		if x%f == 0 {
			return false
		}
	}
	return true
}

// colorMsg carries a node's current color.
type colorMsg struct {
	color int
	max   int // color space size, for bit accounting
}

func (m colorMsg) Bits() int { return simul.BitsForRange(int64(m.max)) }

// linialNode is the per-node automaton. Phases, in lockstep across nodes:
//
//	round 2i:   broadcast current color (reduction step i)
//	round 2i+1: receive neighbor colors, compute the reduced color
//	…after all reduction steps, the color-class elimination countdown runs,
//	one (broadcast, recolor) pair per remaining color above ∆+1.
type linialNode struct {
	color    int
	delta    int
	schedule []reductionStep
	m        int // color count after the reductions
}

func (a *linialNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	round := ctx.Round()
	// Reduction phase: steps occupy round pairs.
	if step := round / 2; step < len(a.schedule) {
		if round%2 == 0 {
			space := ctx.N() // before the first step, colors are IDs
			if step > 0 {
				space = a.schedule[step-1].q * a.schedule[step-1].q
			}
			ctx.Broadcast(colorMsg{color: a.color, max: space})
			return
		}
		a.color = reduceColor(a.color, a.schedule[step], inbox)
		return
	}
	// Elimination phase: target colors m-1, m-2, …, ∆+1 in order.
	elim := round - 2*len(a.schedule)
	target := a.m - 1 - elim/2
	if target <= a.delta {
		ctx.Halt(a.color)
		return
	}
	if elim%2 == 0 {
		ctx.Broadcast(colorMsg{color: a.color, max: a.m})
		return
	}
	if a.color == target {
		used := make(map[int]bool, len(inbox))
		for _, env := range inbox {
			used[env.Msg.(colorMsg).color] = true
		}
		for c := 0; c <= a.delta; c++ {
			if !used[c] {
				a.color = c
				break
			}
		}
	}
}

// reduceColor maps a color in [m] to (x, p(x)) in [q²] such that the result
// differs from every neighbor's reduced choice of x implies no conflict:
// conflicts are avoided because x is chosen where p_v differs from every
// neighbor polynomial, and equal new colors would mean equal (x, p(x)).
func reduceColor(color int, step reductionStep, inbox []simul.Envelope) int {
	q, d := step.q, step.d
	mine := polyDigits(color, q, d)
	// badCount[x] = number of neighbors whose polynomial agrees with ours at
	// x. With ≤ ∆ neighbors each agreeing on ≤ d points and q > d·∆, some x
	// has no agreement.
	bad := make([]bool, q)
	for _, env := range inbox {
		theirs := polyDigits(env.Msg.(colorMsg).color, q, d)
		if equalInts(mine, theirs) {
			// Equal colors cannot happen in a proper coloring; skip rather
			// than corrupt the result.
			continue
		}
		for x := 0; x < q; x++ {
			if polyEval(mine, x, q) == polyEval(theirs, x, q) {
				bad[x] = true
			}
		}
	}
	for x := 0; x < q; x++ {
		if !bad[x] {
			return x*q + polyEval(mine, x, q)
		}
	}
	// Unreachable for a proper input coloring; keep a defined behaviour.
	return polyEval(mine, 0, q)
}

// polyDigits encodes color as d+1 base-q coefficients.
func polyDigits(color, q, d int) []int {
	digits := make([]int, d+1)
	for i := 0; i <= d; i++ {
		digits[i] = color % q
		color /= q
	}
	return digits
}

func polyEval(digits []int, x, q int) int {
	acc := 0
	for i := len(digits) - 1; i >= 0; i-- {
		acc = (acc*x + digits[i]) % q
	}
	return acc
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
