package flow

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-node example with max flow 23.
	f := NewNetwork(6)
	f.AddArc(0, 1, 16)
	f.AddArc(0, 2, 13)
	f.AddArc(1, 2, 10)
	f.AddArc(2, 1, 4)
	f.AddArc(1, 3, 12)
	f.AddArc(3, 2, 9)
	f.AddArc(2, 4, 14)
	f.AddArc(4, 3, 7)
	f.AddArc(3, 5, 20)
	f.AddArc(4, 5, 4)
	if got := f.MaxFlow(0, 5); got != 23 {
		t.Fatalf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewNetwork(4)
	f.AddArc(0, 1, 5)
	f.AddArc(2, 3, 5)
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Fatalf("max flow = %d, want 0", got)
	}
}

func TestMinCutReachable(t *testing.T) {
	// s -(1)-> a -(100)-> t : bottleneck at the first arc.
	f := NewNetwork(3)
	f.AddArc(0, 1, 1)
	f.AddArc(1, 2, 100)
	if got := f.MaxFlow(0, 2); got != 1 {
		t.Fatalf("max flow = %d", got)
	}
	reach := f.MinCutReachable(0)
	if !reach[0] || reach[1] || reach[2] {
		t.Fatalf("reach = %v, want only source", reach)
	}
}

func TestBipartiteISMatchesBranchAndBound(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		nl, nr := 2+r.Intn(8), 2+r.Intn(8)
		g, side := graph.RandomBipartite(nl, nr, 0.4, r.Split(uint64(trial)))
		graph.AssignUniformNodeWeights(g, 25, r.Split(uint64(100+trial)))
		in, w, err := MaxWeightBipartiteIS(g, side)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(in) {
			t.Fatal("flow-based IS not independent")
		}
		if got := g.SetWeight(in); got != w {
			t.Fatalf("reported %d != recomputed %d", w, got)
		}
		_, want, err := exact.MaxWeightIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if w != want {
			t.Fatalf("trial %d: flow IS %d vs B&B %d", trial, w, want)
		}
	}
}

func TestBipartiteISKoenigUnweighted(t *testing.T) {
	// On an unweighted bipartite graph, |MaxIS| = n - |max matching| (König).
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		g, side := graph.RandomBipartite(6+r.Intn(6), 6+r.Intn(6), 0.3, r.Split(uint64(trial)))
		_, w, err := MaxWeightBipartiteIS(g, side)
		if err != nil {
			t.Fatal(err)
		}
		mm := exact.MaxCardinalityMatching(g)
		if int(w) != g.N()-len(mm) {
			t.Fatalf("trial %d: |IS| = %d, König predicts %d", trial, w, g.N()-len(mm))
		}
	}
}

func TestBipartiteISLargeScale(t *testing.T) {
	// The reason this solver exists: sizes far beyond branch and bound.
	g, side := graph.RandomBipartite(150, 150, 0.05, rng.New(3))
	graph.AssignUniformNodeWeights(g, 1000, rng.New(4))
	in, w, err := MaxWeightBipartiteIS(g, side)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(in) {
		t.Fatal("large IS not independent")
	}
	if w <= 0 {
		t.Fatal("empty IS on a non-trivial instance")
	}
}

func TestBipartiteISRejectsBadInput(t *testing.T) {
	g := graph.Cycle(3)
	if _, _, err := MaxWeightBipartiteIS(g, []int{0, 1, 0}); err == nil {
		t.Fatal("accepted odd cycle")
	}
	p := graph.Path(2)
	if _, _, err := MaxWeightBipartiteIS(p, []int{0, 9}); err == nil {
		t.Fatal("accepted invalid side")
	}
}
