// Package flow implements Dinic's maximum flow algorithm and the classical
// König-style reduction from maximum weight independent set on bipartite
// graphs to minimum cut. The reduction provides exact MaxIS baselines at
// scales where branch and bound is infeasible, so approximation ratios can be
// measured on large bipartite instances.
//
// Layer (DESIGN.md §2): flow is a substrate layer beside internal/exact,
// above internal/graph only.
//
// Concurrency and ownership: a Network is a mutable single-goroutine value
// (MaxFlow mutates residual capacities); build and solve it on one
// goroutine. The package-level reductions construct their own Network per
// call, so they are safe to invoke concurrently on a shared, read-only
// graph.
package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Network is a capacitated directed flow network for Dinic's algorithm.
type Network struct {
	n     int
	head  []int   // head[v] = first arc index of v, -1 if none
	next  []int   // next arc in v's list
	to    []int   // arc target
	cap   []int64 // residual capacity
	level []int
	iter  []int
}

// NewNetwork returns a network with n nodes and no arcs.
func NewNetwork(n int) *Network {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &Network{n: n, head: h}
}

// Infinity is a capacity effectively unbounded for int64 arithmetic.
const Infinity = math.MaxInt64 / 4

// AddArc adds a directed arc u→v with the given capacity (and the implicit
// residual arc v→u with capacity 0).
func (f *Network) AddArc(u, v int, capacity int64) {
	f.push(u, v, capacity)
	f.push(v, u, 0)
}

func (f *Network) push(u, v int, c int64) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = len(f.to) - 1
}

func (f *Network) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for a := f.head[v]; a != -1; a = f.next[a] {
			if f.cap[a] > 0 && f.level[f.to[a]] == -1 {
				f.level[f.to[a]] = f.level[v] + 1
				queue = append(queue, f.to[a])
			}
		}
	}
	return f.level[t] != -1
}

func (f *Network) dfs(v, t int, up int64) int64 {
	if v == t {
		return up
	}
	for ; f.iter[v] != -1; f.iter[v] = f.next[f.iter[v]] {
		a := f.iter[v]
		u := f.to[a]
		if f.cap[a] <= 0 || f.level[u] != f.level[v]+1 {
			continue
		}
		d := f.dfs(u, t, min64(up, f.cap[a]))
		if d > 0 {
			f.cap[a] -= d
			f.cap[a^1] += d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum s→t flow, mutating residual capacities.
func (f *Network) MaxFlow(s, t int) int64 {
	var flow int64
	for f.bfs(s, t) {
		f.iter = make([]int, f.n)
		copy(f.iter, f.head)
		for {
			d := f.dfs(s, t, Infinity)
			if d == 0 {
				break
			}
			flow += d
		}
	}
	return flow
}

// MinCutReachable returns the set of nodes reachable from s in the residual
// network; valid after MaxFlow. The cut consists of arcs from reachable to
// unreachable nodes.
func (f *Network) MinCutReachable(s int) []bool {
	seen := make([]bool, f.n)
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for a := f.head[v]; a != -1; a = f.next[a] {
			if f.cap[a] > 0 && !seen[f.to[a]] {
				seen[f.to[a]] = true
				queue = append(queue, f.to[a])
			}
		}
	}
	return seen
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxWeightBipartiteIS computes an exact maximum weight independent set of a
// bipartite graph via the complement of a minimum weight vertex cover
// (König's theorem generalized to weights through max-flow/min-cut):
// source→left with capacity w(v), right→sink with capacity w(v), and ∞
// capacity on the edges. The IS consists of left nodes still reachable from
// the source and right nodes not reachable — the complement of the min cut.
func MaxWeightBipartiteIS(g *graph.Graph, side []int) ([]bool, int64, error) {
	n := g.N()
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			return nil, 0, fmt.Errorf("flow: edge %v monochromatic; graph not bipartite under side", e)
		}
	}
	src, sink := n, n+1
	f := NewNetwork(n + 2)
	for v := 0; v < n; v++ {
		switch side[v] {
		case 0:
			f.AddArc(src, v, g.NodeWeight(v))
		case 1:
			f.AddArc(v, sink, g.NodeWeight(v))
		default:
			return nil, 0, fmt.Errorf("flow: node %d has side %d, want 0 or 1", v, side[v])
		}
	}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if side[u] == 1 {
			u, v = v, u
		}
		f.AddArc(u, v, Infinity)
	}
	cutWeight := f.MaxFlow(src, sink)
	reach := f.MinCutReachable(src)
	out := make([]bool, n)
	var total int64
	for v := 0; v < n; v++ {
		inIS := (side[v] == 0 && reach[v]) || (side[v] == 1 && !reach[v])
		out[v] = inIS
		if inIS {
			total += g.NodeWeight(v)
		}
	}
	if want := g.TotalNodeWeight() - cutWeight; total != want {
		return nil, 0, fmt.Errorf("flow: IS weight %d disagrees with total-minus-cut %d", total, want)
	}
	return out, total, nil
}
