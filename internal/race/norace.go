//go:build !race

// Package race reports whether the race detector instruments this build.
// Alloc-budget tests skip under -race: instrumentation allocates on its own
// and would fail any steady-state-zero assertion.
//
// Layer (DESIGN.md §2): race is a leaf substrate with no imports, usable
// from any layer. Concurrency: it exposes a single build-time constant, so
// there is no state to synchronize.
package race

// Enabled is true when the binary is built with -race.
const Enabled = false
