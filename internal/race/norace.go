//go:build !race

// Package race reports whether the race detector instruments this build.
// Alloc-budget tests skip under -race: instrumentation allocates on its own
// and would fail any steady-state-zero assertion.
package race

// Enabled is true when the binary is built with -race.
const Enabled = false
