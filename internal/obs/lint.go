package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text exposition (format 0.0.4) document the
// way promtool's check would, without the dependency: every line must be a
// HELP/TYPE comment or a well-formed sample, each family must be typed before
// its first sample, and each histogram series must have cumulative
// non-decreasing buckets ending in le="+Inf" whose total matches its _count.
// Tests use it as the promtool-free parse sanity gate for /metrics output.
func LintProm(text string) error {
	if text == "" {
		return fmt.Errorf("empty exposition")
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("exposition must end with a newline")
	}
	types := make(map[string]string)
	// histogram bookkeeping per series (family + non-le labels): the last
	// cumulative bucket value seen, whether +Inf closed the series, and the
	// _count value to reconcile against.
	lastBucket := make(map[string]float64)
	sawInf := make(map[string]float64)
	counts := make(map[string]float64)
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := ln + 1
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = typ
			continue
		case strings.HasPrefix(line, "# HELP "):
			if len(strings.Fields(line)) < 3 {
				return fmt.Errorf("line %d: malformed HELP comment %q", lineNo, line)
			}
			continue
		case strings.HasPrefix(line, "#"):
			continue // free-form comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family, suffix := histogramFamily(name, types)
		if _, typed := types[family]; !typed {
			return fmt.Errorf("line %d: sample %s before its TYPE comment", lineNo, name)
		}
		series := family + "{" + labelSignature(labels, "le") + "}"
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
			}
			if value < lastBucket[series] {
				return fmt.Errorf("line %d: bucket le=%q of %s decreases (%v after %v)",
					lineNo, le, series, value, lastBucket[series])
			}
			lastBucket[series] = value
			if le == "+Inf" {
				sawInf[series] = value
			}
		case "_count":
			counts[series] = value
		}
	}
	for series, total := range counts {
		inf, ok := sawInf[series]
		if !ok {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", series)
		}
		if inf != total {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", series, inf, total)
		}
	}
	return nil
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	labels := map[string]string{}
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		if labels, err = parseLabels(rest[i+1 : end]); err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		name, rest = rest[:sp], rest[sp:]
	} else {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	if !promNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	valueText := strings.TrimSpace(rest)
	// A timestamp may follow the value; the repo never emits one, so a second
	// field is an error here.
	if strings.ContainsAny(valueText, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parsePromValue(valueText)
	if err != nil {
		return "", nil, 0, err
	}
	return name, labels, v, nil
}

// parsePromValue parses a sample value; strconv.ParseFloat accepts the
// format's +Inf/-Inf/NaN spellings directly.
func parsePromValue(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parseLabels parses `k="v",k2="v2"`, honoring the format's escapes.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without =")
		}
		key := strings.TrimSpace(s[:eq])
		if !promNameRe.MatchString(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[0] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[0])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[0], key)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels[key] = val.String()
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected , after label %q", key)
			}
			s = s[1:]
		}
	}
	return labels, nil
}

// histogramFamily strips a histogram sample suffix when (and only when) the
// stripped name is a typed histogram family, returning the family and the
// suffix ("" for plain samples).
func histogramFamily(name string, types map[string]string) (family, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, sfx); ok && types[base] == "histogram" {
			return base, sfx
		}
	}
	return name, ""
}

// labelSignature renders labels (minus the excluded key) sorted, for keying
// one histogram series.
func labelSignature(labels map[string]string, exclude string) string {
	parts := make([]string, 0, len(labels))
	for _, k := range SortedKeys(labels) {
		if k == exclude {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return strings.Join(parts, ",")
}
