package obs

import (
	"strings"
	"testing"
)

func TestSetEnabledRoundTrip(t *testing.T) {
	if !Enabled() {
		t.Fatal("telemetry attachment must default to enabled")
	}
	prev := SetEnabled(false)
	if !prev {
		t.Fatal("SetEnabled(false) should report the previous enabled state")
	}
	if Enabled() {
		t.Fatal("Enabled() should be false after SetEnabled(false)")
	}
	if prev := SetEnabled(true); prev {
		t.Fatal("SetEnabled(true) should report the previous disabled state")
	}
	if !Enabled() {
		t.Fatal("Enabled() should be true after SetEnabled(true)")
	}
}

func TestRoundTraceAdd(t *testing.T) {
	a := RoundTrace{Rounds: 3, VirtualRounds: 5, Messages: 100, Bits: 800,
		PeakRoundMessages: 40, PeakRoundBits: 320, PeakActive: 7,
		CompactMoves: 2, MemoHits: 10, MemoMisses: 4}
	b := RoundTrace{Rounds: 2, VirtualRounds: 1, Messages: 50, Bits: 400,
		PeakRoundMessages: 60, PeakRoundBits: 100, PeakActive: 3,
		CompactMoves: 1, MemoHits: 5, MemoMisses: 6}
	a.Add(b)
	want := RoundTrace{Rounds: 5, VirtualRounds: 6, Messages: 150, Bits: 1200,
		PeakRoundMessages: 60, PeakRoundBits: 320, PeakActive: 7,
		CompactMoves: 3, MemoHits: 15, MemoMisses: 10}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

func TestTraceIDs(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 {
		t.Fatalf("NewTraceID() = %q, want 16 hex chars", id)
	}
	for _, r := range id {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Fatalf("NewTraceID() = %q contains non-hex %q", id, r)
		}
	}
	if a, b := NewTraceID(), NewTraceID(); a == b {
		t.Fatalf("two trace IDs collided: %q", a)
	}
	child := ChildTraceID("abc123", 7)
	if child != "abc123.007" {
		t.Fatalf("ChildTraceID = %q, want abc123.007", child)
	}
	if !strings.HasPrefix(child, "abc123") {
		t.Fatal("child trace must preserve the parent prefix for log grep")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are upper-inclusive: 0.5 and 1 land in le=1; 5 and 10 in le=10;
	// 99 in le=100; 1000 overflows to +Inf.
	wantCounts := []uint64{2, 2, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("counts: got %v, want %v", s.Counts, wantCounts)
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("counts: got %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+5+10+99+1000 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestNewHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(10, 1) should panic")
		}
	}()
	NewHistogram(10, 1)
}
