package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition format 0.0.4 content
// type, returned by /metrics when text exposition is negotiated.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter renders metric families in the Prometheus text exposition
// format 0.0.4. Families are rendered in the order first written; label sets
// within a family are rendered in the order written (callers emit them
// sorted, keeping output deterministic for golden tests). A PromWriter is a
// single-goroutine value: build and flush it inside one handler call.
type PromWriter struct {
	b     strings.Builder
	typed map[string]bool
	err   error
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{typed: make(map[string]bool)}
}

// header emits the HELP/TYPE preamble once per family.
func (w *PromWriter) header(name, help, typ string) {
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// Counter emits one sample of a counter family. Labels alternate key, value
// ("worker", "http://w1:8080"); values are escaped per the format.
func (w *PromWriter) Counter(name, help string, v float64, labels ...string) {
	w.header(name, help, "counter")
	w.sample(name, "", labels, v)
}

// Gauge emits one sample of a gauge family.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	w.header(name, help, "gauge")
	w.sample(name, "", labels, v)
}

// Histogram emits a full histogram family from a snapshot: cumulative `le`
// buckets ending in +Inf, then _sum and _count.
func (w *PromWriter) Histogram(name, help string, s HistSnapshot, labels ...string) {
	w.header(name, help, "histogram")
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		w.sample(name+"_bucket", formatBound(bound), labels, float64(cum))
	}
	if n := len(s.Bounds); n < len(s.Counts) {
		cum += s.Counts[n]
	}
	w.sample(name+"_bucket", "+Inf", labels, float64(cum))
	w.sample(name+"_sum", "", labels, s.Sum)
	w.sample(name+"_count", "", labels, float64(s.Count))
}

// sample writes one line: name{labels,le} value.
func (w *PromWriter) sample(name, le string, labels []string, v float64) {
	if len(labels)%2 != 0 {
		w.err = fmt.Errorf("obs: odd label list for %s", name)
		return
	}
	w.b.WriteString(name)
	if len(labels) > 0 || le != "" {
		w.b.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			// %q escapes backslash, double quote and newline exactly as the
			// exposition format requires for label values.
			fmt.Fprintf(&w.b, "%s=%q", labels[i], labels[i+1])
		}
		if le != "" {
			if len(labels) > 0 {
				w.b.WriteByte(',')
			}
			fmt.Fprintf(&w.b, "le=%q", le)
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(v))
	w.b.WriteByte('\n')
}

// WriteTo flushes the rendered exposition to out.
func (w *PromWriter) WriteTo(out io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := io.WriteString(out, w.b.String())
	return int64(n), err
}

// String returns the rendered exposition.
func (w *PromWriter) String() string { return w.b.String() }

// formatValue renders a sample value: integers exactly, floats in the
// shortest round-trip form, and the special values per the format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// formatBound renders an `le` bound (always finite here; +Inf is emitted
// explicitly by Histogram).
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 1, 64) // "10.0" style, matches promtool output
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortedKeys returns the keys of m sorted, for deterministic per-key
// emission (e.g. per-worker gauges keyed by URL).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
