package obs

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// bucket i counts observations ≤ Bounds[i], with an implicit +Inf bucket at
// the end. It is deliberately not internally locked — the owner (the service
// layer) already serializes observations under its own mutex, and a second
// lock on the hot completion path would be pure overhead. Do not share an
// unguarded Histogram across goroutines.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistSnapshot is an immutable copy of a histogram's state. Counts are
// per-bucket (not yet cumulative); the Prometheus writer accumulates them.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}
