package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildExposition renders one document exercising every PromWriter feature:
// counters, gauges, labels needing escapes, repeated families, and histograms
// (populated and empty).
func buildExposition() string {
	w := NewPromWriter()
	w.Counter("repro_test_events_total", "Events observed.", 42)
	w.Gauge("repro_test_depth", "Current depth.", 3.5)
	w.Gauge("repro_test_worker_up", "Per-worker health.", 1, "worker", "http://w1:8080")
	w.Gauge("repro_test_worker_up", "", 0, "worker", `quo"te\back`+"\nnewline")
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	w.Histogram("repro_test_rounds", "Rounds per run.", h.Snapshot())
	w.Histogram("repro_test_empty", "Never observed.", HistSnapshot{})
	return w.String()
}

func TestPromWriterGolden(t *testing.T) {
	got := buildExposition()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromWriterOutputLints(t *testing.T) {
	if err := LintProm(buildExposition()); err != nil {
		t.Fatalf("exposition fails its own lint: %v", err)
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no trailing newline": "# TYPE a counter\na 1",
		"untyped sample":      "a 1\n",
		"bad value":           "# TYPE a counter\na one\n",
		"bad name":            "# TYPE 9a counter\n9a 1\n",
		"decreasing buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1.0\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1.0\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"unterminated label": "# TYPE a counter\na{x=\"y 1\n",
	}
	for name, doc := range cases {
		if err := LintProm(doc); err == nil {
			t.Errorf("%s: lint accepted malformed document %q", name, doc)
		}
	}
}
