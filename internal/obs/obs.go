// Package obs is the repository's zero-dependency observability substrate:
// round/message telemetry summaries (RoundTrace), trace-ID generation and
// propagation helpers, fixed-bucket histograms, and a Prometheus text
// exposition writer. Everything here is stdlib-only and allocation-aware so
// the layers above can observe the engines without perturbing them.
//
// Layer (DESIGN.md §2): obs is a leaf substrate with no repository imports;
// simul, agg, registry, service, httpapi, cluster and the cmd layer all
// consume it.
//
// Ownership and sampling contract: the hot engines (simul, agg) own their
// counters — they accumulate into pre-sized arenas (the padded shard structs
// and per-node memo fields that already exist for the round loop) and never
// call into obs during a round. obs only *summarizes*: a RoundTrace is built
// once per run from the engine's final counters, and histograms are observed
// once per job completion under the service mutex. The Enabled switch
// therefore gates attachment and exposition, not counting — counting is O(1)
// per round and branch-free, which is what keeps telemetry-on and
// telemetry-off runs bit-identical.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// enabled gates RoundTrace attachment to results. Default on. Stored
// inverted (0 = on) so the zero value of the package is "enabled".
var disabled atomic.Bool

// Enabled reports whether telemetry summaries are attached to results.
func Enabled() bool { return !disabled.Load() }

// SetEnabled switches telemetry attachment on or off and returns the
// previous setting, so tests can toggle and restore:
//
//	defer obs.SetEnabled(obs.SetEnabled(false))
func SetEnabled(on bool) (prev bool) {
	return !disabled.Swap(!on)
}

// RoundTrace summarizes one engine run for results and batch aggregates: how
// many rounds it took, how many messages and payload bits moved in total and
// at the peak round, how busy the arenas got, and how well the fold memo did.
// The zero value is a valid "nothing ran" trace.
type RoundTrace struct {
	// Rounds is the number of real communication rounds executed; for
	// line-graph simulations VirtualRounds counts the simulated rounds on
	// L(G) (0 when the run was not a simulation).
	Rounds        int `json:"rounds"`
	VirtualRounds int `json:"virtual_rounds,omitempty"`
	// Messages and Bits total the delivered envelopes and their payload
	// bits; PeakRoundMessages/PeakRoundBits are the largest single-round
	// values, the quantity ROADMAP's scaling items budget against.
	Messages          int64 `json:"messages"`
	Bits              int64 `json:"bits"`
	PeakRoundMessages int64 `json:"peak_round_messages,omitempty"`
	PeakRoundBits     int64 `json:"peak_round_bits,omitempty"`
	// PeakActive is the most automata stepped in any round; CompactMoves
	// counts envelope slots the mailbox compactor relocated.
	PeakActive   int   `json:"peak_active,omitempty"`
	CompactMoves int64 `json:"compact_moves,omitempty"`
	// MemoHits/MemoMisses count exchange-folding memo lookups in the agg
	// runtime (zero for runtimes without a memo).
	MemoHits   uint64 `json:"memo_hits,omitempty"`
	MemoMisses uint64 `json:"memo_misses,omitempty"`
}

// Add folds o into t: counts sum, peaks take the max. Use when one logical
// run is assembled from several engine runs (coloring + selection phases,
// per-bucket sub-runs).
func (t *RoundTrace) Add(o RoundTrace) {
	t.Rounds += o.Rounds
	t.VirtualRounds += o.VirtualRounds
	t.Messages += o.Messages
	t.Bits += o.Bits
	t.PeakRoundMessages = max(t.PeakRoundMessages, o.PeakRoundMessages)
	t.PeakRoundBits = max(t.PeakRoundBits, o.PeakRoundBits)
	t.PeakActive = max(t.PeakActive, o.PeakActive)
	t.CompactMoves += o.CompactMoves
	t.MemoHits += o.MemoHits
	t.MemoMisses += o.MemoMisses
}

// NewTraceID returns a fresh 16-hex-char trace ID. IDs are random, not
// sequential, so traces from independent processes never collide in a merged
// log stream.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a degenerate
		// constant keeps the caller going rather than panicking mid-request.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ChildTraceID derives the trace ID of the index-th child span (e.g. one
// batch cell) from its parent's ID. The derivation is deterministic and
// prefix-preserving, so grepping a log stream for the parent ID also finds
// every child.
func ChildTraceID(parent string, index int) string {
	return fmt.Sprintf("%s.%03d", parent, index)
}
