// Package hypergraph implements low-rank hypergraphs and the paper's
// nearly-maximal hypergraph matching algorithm (Appendix B.2).
//
// The (1+ε)-approximation of maximum matching reduces each Hopcroft–Karp
// phase to the following problem: given a hypergraph of rank d = O(1/ε)
// (one hyperedge per length-d augmenting path, over the graph's nodes), find
// a maximal matching of hyperedges among the nodes that stay active, while
// deactivating each node with probability at most δ. Lemma B.3 shows the
// algorithm below leaves no hyperedge with all nodes active after
// O(d²·(K²log(1/δ) + log_K ∆)) iterations.
//
// Layer (DESIGN.md §2): hypergraph is a substrate consumed by
// internal/augment's phase framework; it imports only internal/rng.
//
// Concurrency and ownership: a Hypergraph is a mutable single-goroutine
// value — build it, run the matching, read the outcome, all on one
// goroutine. Distinct Hypergraphs are independent, so concurrent phases
// over separate instances are safe.
package hypergraph

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/rng"
)

// Hypergraph is a hypergraph over nodes 0..n-1 with edges of rank ≤ d.
type Hypergraph struct {
	n        int
	rank     int
	edges    [][]int // sorted node lists
	incident [][]int // node -> incident edge indices
}

// New returns an empty hypergraph on n nodes with maximum rank d.
func New(n, rank int) *Hypergraph {
	return &Hypergraph{n: n, rank: rank, incident: make([][]int, n)}
}

// N returns the number of nodes.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// Rank returns the maximum edge size.
func (h *Hypergraph) Rank() int { return h.rank }

// Edge returns the sorted node list of edge id.
func (h *Hypergraph) Edge(id int) []int { return h.edges[id] }

// AddEdge inserts a hyperedge over the given nodes and returns its index.
func (h *Hypergraph) AddEdge(nodes []int) (int, error) {
	if len(nodes) == 0 || len(nodes) > h.rank {
		return 0, fmt.Errorf("hypergraph: edge size %d outside [1, %d]", len(nodes), h.rank)
	}
	sorted := append([]int(nil), nodes...)
	slices.Sort(sorted)
	for i, v := range sorted {
		if v < 0 || v >= h.n {
			return 0, fmt.Errorf("hypergraph: node %d out of range", v)
		}
		if i > 0 && sorted[i-1] == v {
			return 0, fmt.Errorf("hypergraph: duplicate node %d in edge", v)
		}
	}
	id := len(h.edges)
	h.edges = append(h.edges, sorted)
	for _, v := range sorted {
		h.incident[v] = append(h.incident[v], id)
	}
	return id, nil
}

// IsMatching reports whether the given edge set is node-disjoint.
func (h *Hypergraph) IsMatching(ids []int) bool {
	used := make(map[int]bool)
	for _, id := range ids {
		if id < 0 || id >= len(h.edges) {
			return false
		}
		for _, v := range h.edges[id] {
			if used[v] {
				return false
			}
			used[v] = true
		}
	}
	return true
}

// Params configures the nearly-maximal matching run.
type Params struct {
	K     int     // probability factor, ≥ 2
	Delta float64 // deactivation probability target δ
	Beta  int     // round-budget constant; 0 means 2
}

// Result of a nearly-maximal matching computation.
type Result struct {
	// Matching holds the chosen hyperedge indices (node-disjoint).
	Matching []int
	// Deactivated marks nodes removed by the good-round cap; Lemma B.10
	// bounds each node's probability of this by δ.
	Deactivated []bool
	// Iterations actually executed.
	Iterations int
	// Budget is the Lemma B.3 iteration bound that was enforced.
	Budget int
}

// maxEdgeDegree returns max over edges of the number of intersecting edges
// (the ∆ of Lemma B.3's log_K ∆ term).
func (h *Hypergraph) maxEdgeDegree() int {
	d := 1
	seen := make(map[int]bool)
	for id, nodes := range h.edges {
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range nodes {
			for _, e := range h.incident[v] {
				if e != id {
					seen[e] = true
				}
			}
		}
		if len(seen)+1 > d {
			d = len(seen) + 1
		}
	}
	return d
}

// NearlyMaximalMatching runs the Appendix B.2 algorithm: marking
// probabilities per hyperedge starting at 1/K, divided by K when the
// intersecting probability mass is ≥ 2 and multiplied by K (capped at 1/K)
// otherwise; a marked edge with no marked intersecting edge joins the
// matching; a node that accumulates too many good rounds — rounds in which
// the light-edge probability mass at the node is ≥ 1/(2dK²) — without being
// matched is deactivated.
func (h *Hypergraph) NearlyMaximalMatching(p Params, r *rng.Stream) (*Result, error) {
	if p.K < 2 {
		return nil, fmt.Errorf("hypergraph: K must be ≥ 2, got %d", p.K)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return nil, fmt.Errorf("hypergraph: δ must be in (0,1), got %v", p.Delta)
	}
	beta := p.Beta
	if beta == 0 {
		beta = 2
	}
	d := float64(h.rank)
	K := float64(p.K)
	logDeg := math.Log(float64(h.maxEdgeDegree()) + 2)
	budget := int(math.Ceil(float64(beta)*d*d*(K*K*math.Log(1/p.Delta)+logDeg/math.Log(K)))) + 1
	goodCap := int(math.Ceil(float64(beta)*d*K*K*math.Log(1/p.Delta))) + 1

	m := len(h.edges)
	prob := make([]float64, m)
	liveEdge := make([]bool, m)
	for e := range prob {
		prob[e] = 1 / K
		liveEdge[e] = true
	}
	activeNode := make([]bool, h.n)
	for v := range activeNode {
		activeNode[v] = true
	}
	goodRounds := make([]int, h.n)
	deactivated := make([]bool, h.n)
	var matching []int

	marked := make([]bool, m)
	light := make([]bool, m)
	sums := make([]float64, m)
	liveCount := m

	// Run until no hyperedge is fully active — the matching must be maximal
	// among active nodes (Lemma B.3 guarantees this happens within the
	// budget for suitable constants; the hard cap catches parameterizations
	// for which our explicit constants are too small).
	hardCap := 64*budget + 1024
	iterations := 0
	for ; liveCount > 0; iterations++ {
		if iterations >= hardCap {
			return nil, fmt.Errorf("hypergraph: %d live edges after %d iterations (budget %d); constants too small", liveCount, iterations, budget)
		}
		// Intersecting probability mass per edge: Σ_{e'∩e≠∅} p(e'),
		// including e itself.
		for e := range sums {
			sums[e] = 0
		}
		for e, live := range liveEdge {
			if !live {
				continue
			}
			s := 0.0
			seen := map[int]bool{e: true}
			for _, v := range h.edges[e] {
				for _, e2 := range h.incident[v] {
					if liveEdge[e2] && !seen[e2] {
						seen[e2] = true
						s += prob[e2]
					}
				}
			}
			sums[e] = s + prob[e]
			light[e] = sums[e] < 2
		}

		// Good-round bookkeeping and deactivation (the algorithm change of
		// Appendix B.2).
		lightMass := make([]float64, h.n)
		for e, live := range liveEdge {
			if live && light[e] {
				for _, v := range h.edges[e] {
					lightMass[v] += prob[e]
				}
			}
		}
		goodThreshold := 1 / (2 * d * K * K)
		for v := 0; v < h.n; v++ {
			if !activeNode[v] || lightMass[v] < goodThreshold {
				continue
			}
			goodRounds[v]++
			if goodRounds[v] > goodCap {
				deactivated[v] = true
				activeNode[v] = false
				for _, e := range h.incident[v] {
					if liveEdge[e] {
						liveEdge[e] = false
						liveCount--
					}
				}
			}
		}

		// Marking and joining.
		for e, live := range liveEdge {
			marked[e] = live && r.Bernoulli(prob[e])
		}
		for e, isM := range marked {
			if !isM || !liveEdge[e] {
				continue
			}
			lone := true
		scan:
			for _, v := range h.edges[e] {
				for _, e2 := range h.incident[v] {
					if e2 != e && liveEdge[e2] && marked[e2] {
						lone = false
						break scan
					}
				}
			}
			if !lone {
				continue
			}
			matching = append(matching, e)
			// Remove the edge's nodes and everything incident.
			for _, v := range h.edges[e] {
				activeNode[v] = false
				for _, e2 := range h.incident[v] {
					if liveEdge[e2] {
						liveEdge[e2] = false
						liveCount--
					}
				}
			}
		}

		// Probability updates.
		for e, live := range liveEdge {
			if !live {
				continue
			}
			if sums[e] >= 2 {
				prob[e] /= K
			} else {
				prob[e] = math.Min(prob[e]*K, 1/K)
			}
		}
	}

	return &Result{
		Matching:    matching,
		Deactivated: deactivated,
		Iterations:  iterations,
		Budget:      budget,
	}, nil
}
