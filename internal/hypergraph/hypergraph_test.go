package hypergraph

import (
	"testing"

	"repro/internal/rng"
)

func TestAddEdgeValidation(t *testing.T) {
	h := New(5, 3)
	if _, err := h.AddEdge(nil); err == nil {
		t.Fatal("empty edge accepted")
	}
	if _, err := h.AddEdge([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("over-rank edge accepted")
	}
	if _, err := h.AddEdge([]int{0, 5, 1}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := h.AddEdge([]int{0, 1, 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	id, err := h.AddEdge([]int{2, 0, 4})
	if err != nil || id != 0 {
		t.Fatalf("valid edge rejected: %v", err)
	}
	got := h.Edge(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("edge not stored sorted: %v", got)
	}
}

func TestIsMatching(t *testing.T) {
	h := New(6, 2)
	a, _ := h.AddEdge([]int{0, 1})
	b, _ := h.AddEdge([]int{2, 3})
	c, _ := h.AddEdge([]int{1, 2})
	if !h.IsMatching([]int{a, b}) {
		t.Fatal("disjoint edges rejected")
	}
	if h.IsMatching([]int{a, c}) {
		t.Fatal("overlapping edges accepted")
	}
	if h.IsMatching([]int{99}) {
		t.Fatal("out-of-range edge accepted")
	}
}

// randomHypergraph builds a hypergraph with m random edges of size ≤ rank.
func randomHypergraph(n, m, rank int, r *rng.Stream) *Hypergraph {
	h := New(n, rank)
	for i := 0; i < m; i++ {
		size := 1 + r.Intn(rank)
		seen := map[int]bool{}
		var nodes []int
		for len(nodes) < size {
			v := r.Intn(n)
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
		if _, err := h.AddEdge(nodes); err != nil {
			panic(err)
		}
	}
	return h
}

func TestNMMProducesMaximalMatchingAmongActive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 15; trial++ {
		h := randomHypergraph(40, 60, 4, r.Split(uint64(trial)))
		res, err := h.NearlyMaximalMatching(Params{K: 2, Delta: 0.1}, r.Split(uint64(1000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !h.IsMatching(res.Matching) {
			t.Fatalf("trial %d: output overlaps", trial)
		}
		// Lemma B.3 invariant: no hyperedge has all nodes active and no
		// intersection with the matching.
		matchedNode := make(map[int]bool)
		for _, id := range res.Matching {
			for _, v := range h.Edge(id) {
				matchedNode[v] = true
			}
		}
		for id := 0; id < h.M(); id++ {
			blockedOrDead := false
			for _, v := range h.Edge(id) {
				if res.Deactivated[v] || matchedNode[v] {
					blockedOrDead = true
					break
				}
			}
			if !blockedOrDead {
				t.Fatalf("trial %d: hyperedge %d fully active and unmatched", trial, id)
			}
		}
	}
}

func TestNMMDeactivationRate(t *testing.T) {
	const delta = 0.1
	r := rng.New(2)
	total, dead := 0, 0
	for trial := 0; trial < 10; trial++ {
		h := randomHypergraph(60, 90, 3, r.Split(uint64(trial)))
		res, err := h.NearlyMaximalMatching(Params{K: 2, Delta: delta}, r.Split(uint64(500+trial)))
		if err != nil {
			t.Fatal(err)
		}
		total += h.N()
		for _, d := range res.Deactivated {
			if d {
				dead++
			}
		}
	}
	if frac := float64(dead) / float64(total); frac > 3*delta {
		t.Fatalf("deactivated fraction %.3f exceeds 3δ", frac)
	}
}

func TestNMMIterationsWithinBudget(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 8; trial++ {
		h := randomHypergraph(30, 50, 3, r.Split(uint64(trial)))
		res, err := h.NearlyMaximalMatching(Params{K: 2, Delta: 0.05}, r.Split(uint64(200+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations > 4*res.Budget {
			t.Fatalf("trial %d: %d iterations vs budget %d", trial, res.Iterations, res.Budget)
		}
	}
}

func TestNMMParamValidation(t *testing.T) {
	h := New(3, 2)
	r := rng.New(4)
	if _, err := h.NearlyMaximalMatching(Params{K: 1, Delta: 0.1}, r); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := h.NearlyMaximalMatching(Params{K: 2, Delta: 0}, r); err == nil {
		t.Fatal("δ=0 accepted")
	}
}

func TestNMMEmptyHypergraph(t *testing.T) {
	h := New(5, 3)
	res, err := h.NearlyMaximalMatching(Params{K: 2, Delta: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matching) != 0 || res.Iterations != 0 {
		t.Fatalf("unexpected work on empty hypergraph: %+v", res)
	}
}

func TestNMMRankOne(t *testing.T) {
	// Rank-1 hyperedges never intersect each other unless they share the
	// node; all singletons on distinct nodes must be matched.
	h := New(4, 1)
	for v := 0; v < 4; v++ {
		if _, err := h.AddEdge([]int{v}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.NearlyMaximalMatching(Params{K: 2, Delta: 0.1}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matching) != 4 {
		t.Fatalf("matched %d singletons, want 4", len(res.Matching))
	}
}
