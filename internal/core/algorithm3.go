package core

import (
	"repro/internal/agg"
)

// fColor reuses the layer slot: Algorithm 3 partitions nodes by color instead
// of by weight layer (§2.3).
const fColor = fLayer

// algorithm3 is the coloring-based deterministic MaxIS machine (Algorithm 3).
// Given a proper coloring, each two-round cycle lets every waiting node whose
// color is a local maximum among waiting neighbors perform the local-ratio
// weight reduction:
//
//	τ = 0  reduce: local color maxima become candidates, zero their weight
//	       and publish it (colors with larger index have priority);
//	τ = 1  apply: neighbors subtract Σ reduce; non-positive nodes are
//	       removed.
//
// Color classes are independent sets, and a strict local maximum has no
// same-color neighbor, so the candidates of one cycle are independent — the
// precondition of Lemma 2.2. After at most numColors cycles every node is a
// candidate or removed; the addition stage (shared with Algorithm 2) then
// unwinds candidates in reverse precedence order. With a (∆+1)-coloring the
// removal stage takes O(∆) cycles, matching the O(∆ + log* n) total of
// Theorem 2.10 once the coloring rounds are added.
type algorithm3 struct {
	color int64
}

// newAlgorithm3 builds the machine for a virtual node with the given color.
func newAlgorithm3(color int) *algorithm3 {
	return &algorithm3{color: int64(color)}
}

func (m *algorithm3) Fields() int { return numShared }

// waitingColorPlan asks for the highest color among live waiting neighbors.
// (fColor aliases fLayer, so this is distinct from waitingLayerPlan only in
// name; it is kept separate to mirror the paper's reduce-round phrasing.)
var waitingColorPlan = [1]agg.Query{
	{Agg: agg.Max, Proj: func(nd agg.Data) int64 {
		if nd[fStatus] == stWaiting {
			return nd[fColor]
		}
		return -1
	}},
}

func (m *algorithm3) Init(info *agg.NodeInfo, d agg.Data) {
	d[fStatus] = stWaiting
	d[fWeight] = info.Weight
	d[fColor] = m.color
	d[fCandTime] = -1
	d[fReduce] = 0
}

func (m *algorithm3) Queries(info *agg.NodeInfo, t int, data agg.Data, qs []agg.Query) []agg.Query {
	if t%2 == 0 {
		qs = append(qs, waitingColorPlan[:]...)
	} else {
		qs = append(qs, reducePlan[:]...)
	}
	return append(qs, additionPlan[:]...)
}

func (m *algorithm3) Update(info *agg.NodeInfo, t int, data agg.Data, results []int64) (bool, any) {
	phaseResults := results[:len(results)-3]
	if halt, out, handled := handleAddition(data, results[len(results)-3:]); handled {
		return halt, out
	}
	if t%2 == 0 {
		// Reduce round: strict local color maxima reduce their closed
		// neighborhood (the proper coloring rules out ties).
		if data[fStatus] == stWaiting && data[fColor] > phaseResults[0] {
			data[fStatus] = stCandidate
			data[fCandTime] = int64(t / 2)
			data[fReduce] = data[fWeight]
			data[fWeight] = 0
			data[fColor] = -1
		}
		return false, nil
	}
	// Apply round (only waiting nodes reach here).
	data[fWeight] -= phaseResults[0]
	if data[fWeight] <= 0 {
		return true, false
	}
	return false, nil
}
