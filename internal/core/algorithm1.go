// Package core implements the paper's primary contribution:
//
//   - Algorithm 1 (§2.1, Appendix A): the sequential local-ratio
//     ∆-approximation meta-algorithm for maximum weight independent set;
//   - Algorithm 2 (§2.2): its distributed implementation, which layers nodes
//     by weight (L_i = {v : 2^{i-1} < w(v) ≤ 2^i}), gates MIS instances by
//     layer, and finishes in O(MIS(G)·log W) rounds (Theorem 2.3);
//   - Algorithm 3 (§2.3): the deterministic coloring-based variant,
//     O(∆ + log* n) rounds given a (∆+1)-coloring;
//   - the 2-approximation of maximum weight matching obtained by executing
//     Algorithms 2/3 on the line graph through the local-aggregation
//     simulation of Theorem 2.8 (§2.4, Theorem 2.10).
//
// Algorithms 2 and 3 are written as agg.Machines — the paper's "local
// aggregation algorithms" (Theorem 2.9) — so one implementation serves both
// the MaxIS case (agg.RunDirect on G) and the matching case (agg.RunLine on
// L(G)) with no congestion overhead in CONGEST.
//
// Layer (DESIGN.md §2): core is the primary algorithm layer, above
// internal/agg and the mis/coloring black boxes, below internal/registry.
//
// Concurrency and ownership: every entry point is a synchronous run on the
// calling goroutine (the parallel simul engine underneath is an internal
// detail). Input graphs are strictly read-only and may be shared between
// concurrent runs; returned results are owned by the caller.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/rng"
)

// PickIS selects the independent set used for one weight-reduction step of
// Algorithm 1. alive[v] and w[v] describe the current residual instance
// (nodes with w[v] ≤ 0 are already dead). The returned set must be
// independent in g and consist of alive nodes; Algorithm 1's correctness does
// not depend on how it is picked (§2.1: "it does not matter how the set U is
// picked").
type PickIS func(g *graph.Graph, alive []bool, w []int64) []int

// GreedyPick returns a maximal independent set of the alive subgraph, scanned
// in ID order. It is the default selection rule for Algorithm 1.
func GreedyPick(g *graph.Graph, alive []bool, w []int64) []int {
	var set []int
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if !alive[v] || blocked[v] {
			continue
		}
		set = append(set, v)
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return set
}

// SingleNodePick returns the single alive node of maximum weight — the
// "simplest form" of the local ratio technique described in §1.1, which
// reduces one node per iteration (and would need O(n) distributed rounds).
func SingleNodePick(g *graph.Graph, alive []bool, w []int64) []int {
	best := -1
	for v := 0; v < g.N(); v++ {
		if alive[v] && (best == -1 || w[v] > w[best]) {
			best = v
		}
	}
	if best == -1 {
		return nil
	}
	return []int{best}
}

// RandomMISPick returns a maximal independent set of the alive subgraph,
// scanned in random order; exercises the meta-algorithm's indifference to the
// selection rule.
func RandomMISPick(r *rng.Stream) PickIS {
	return func(g *graph.Graph, alive []bool, w []int64) []int {
		order := r.Perm(g.N())
		var set []int
		blocked := make([]bool, g.N())
		for _, v := range order {
			if !alive[v] || blocked[v] {
				continue
			}
			set = append(set, v)
			for _, u := range g.Neighbors(v) {
				blocked[u] = true
			}
		}
		return set
	}
}

// SequentialLocalRatio runs Algorithm 1: iteratively pick an independent set
// U, reduce each u ∈ U's weight from its closed neighborhood (w₂ =
// Σ_{u∈U} w(u)·1_{N[u]}, so u itself drops to zero and is stacked as a
// candidate), delete nodes whose weight reaches ≤ 0, and finally unwind the
// stack in reverse, adding each candidate whose neighborhood stays outside
// the solution. The result is a ∆-approximate maximum weight independent set
// (Lemma 2.2 + Theorem 2.1).
func SequentialLocalRatio(g *graph.Graph, pick PickIS) []bool {
	if pick == nil {
		pick = GreedyPick
	}
	n := g.N()
	w := make([]int64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		w[v] = g.NodeWeight(v)
		alive[v] = w[v] > 0
	}
	var stack []int // candidates in order of removal; unwound in reverse
	liveCount := 0
	for _, a := range alive {
		if a {
			liveCount++
		}
	}
	for liveCount > 0 {
		u := pick(g, alive, w)
		if len(u) == 0 {
			panic("core: PickIS returned an empty set on a non-empty instance")
		}
		// Validate independence and liveness; a broken selection rule must
		// fail loudly rather than silently void the approximation proof.
		for i, a := range u {
			if !alive[a] {
				panic(fmt.Sprintf("core: PickIS selected dead node %d", a))
			}
			for _, b := range u[i+1:] {
				if g.HasEdge(a, b) {
					panic(fmt.Sprintf("core: PickIS selected adjacent nodes %d and %d", a, b))
				}
			}
		}
		// Simultaneous closed-neighborhood reductions.
		for _, a := range u {
			for _, v := range g.Neighbors(a) {
				if alive[v] {
					w[v] -= w[a]
				}
			}
		}
		for _, a := range u {
			w[a] = 0
			alive[a] = false
			liveCount--
			stack = append(stack, a)
		}
		for v := 0; v < n; v++ {
			if alive[v] && w[v] <= 0 {
				alive[v] = false
				liveCount--
			}
		}
	}
	// Unwind: reverse order of removal.
	in := make([]bool, n)
	for i := len(stack) - 1; i >= 0; i-- {
		u := stack[i]
		free := true
		for _, v := range g.Neighbors(u) {
			if in[v] {
				free = false
				break
			}
		}
		if free {
			in[u] = true
		}
	}
	return in
}

// layerOf returns the paper's weight layer index: L_i = {v : 2^{i-1} < w ≤ 2^i},
// i.e. ⌈log₂ w⌉, with layerOf(1) = 0.
func layerOf(w int64) int64 {
	if w <= 1 {
		return 0
	}
	return int64(bits.Len64(uint64(w - 1)))
}
