package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestWeightSplitConservation checks the local-ratio decomposition behind
// Lemma 2.2: for any independent set U, splitting the weight vector as
// w₂ = Σ_{u∈U} w(u)·1_{N[u]} (closed neighborhoods) and w₁ = w − w₂
// satisfies w = w₁ + w₂ exactly and zeroes w₁ on U — the precondition for
// applying Theorem 2.1 recursively.
func TestWeightSplitConservation(t *testing.T) {
	r := rng.New(1)
	check := func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		g := graph.GNP(14, 0.3, rr)
		graph.AssignUniformNodeWeights(g, 40, rr)
		n := g.N()
		w := make([]int64, n)
		alive := make([]bool, n)
		for v := 0; v < n; v++ {
			w[v] = g.NodeWeight(v)
			alive[v] = true
		}
		u := RandomMISPick(rr)(g, alive, w)

		// Build the split.
		w2 := make([]int64, n)
		for _, a := range u {
			w2[a] += w[a]
			for _, v := range g.Neighbors(a) {
				w2[v] += w[a]
			}
		}
		w1 := make([]int64, n)
		for v := 0; v < n; v++ {
			w1[v] = w[v] - w2[v]
		}
		// Conservation and the U-zeroing property.
		for v := 0; v < n; v++ {
			if w1[v]+w2[v] != w[v] {
				return false
			}
		}
		for _, a := range u {
			if w1[a] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLemma22ExtensionProperty checks the solution-extension step of
// Lemma 2.2 on the full algorithm: every node that performed a reduction
// (every stacked candidate) must end up in the solution or adjacent to it —
// that is what makes the solution ∆-approximate for the residual graph.
// Since candidates form a superset of the returned set and every candidate
// either joined or had a neighbor join, the output restricted to the
// candidate closure must be "locally maximal". We verify the observable
// consequence: adding any node from U of the *first* reduction step never
// stays independent unless the algorithm already chose it.
func TestLemma22ExtensionProperty(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		rr := r.Split(uint64(trial))
		g := graph.GNP(16, 0.3, rr)
		graph.AssignUniformNodeWeights(g, 30, rr)
		// First reduction set with the default greedy pick (deterministic).
		alive := make([]bool, g.N())
		w := make([]int64, g.N())
		for v := 0; v < g.N(); v++ {
			alive[v] = true
			w[v] = g.NodeWeight(v)
		}
		u := GreedyPick(g, alive, w)

		in := SequentialLocalRatio(g, GreedyPick)
		for _, a := range u {
			if in[a] {
				continue
			}
			covered := false
			for _, v := range g.Neighbors(a) {
				if in[v] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: first-step reducer %d neither chosen nor covered — Lemma 2.2's extension was skipped", trial, a)
			}
		}
	}
}
