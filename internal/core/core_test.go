package core

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

// ratioBoundIS fails the test if weight·∆ < OPT, i.e. the ∆-approximation
// guarantee is violated.
func ratioBoundIS(t *testing.T, g *graph.Graph, got int64, label string) {
	t.Helper()
	_, opt, err := exact.MaxWeightIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	delta := int64(g.MaxDegree())
	if delta == 0 {
		delta = 1
	}
	if got*delta < opt {
		t.Fatalf("%s: weight %d violates ∆-approximation (OPT=%d, ∆=%d)", label, got, opt, delta)
	}
	if got > opt {
		t.Fatalf("%s: weight %d exceeds OPT=%d — solver or validity bug", label, got, opt)
	}
}

func TestLayerOf(t *testing.T) {
	cases := map[int64]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for w, want := range cases {
		if got := layerOf(w); got != want {
			t.Errorf("layerOf(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestSequentialLocalRatioApproximation(t *testing.T) {
	r := rng.New(1)
	picks := map[string]PickIS{
		"greedy": GreedyPick,
		"single": SingleNodePick,
		"random": RandomMISPick(rng.New(42)),
	}
	for name, pick := range picks {
		name, pick := name, pick
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				g := graph.GNP(18, 0.25, r.Split(uint64(trial)))
				graph.AssignUniformNodeWeights(g, 50, r.Split(uint64(100+trial)))
				in := SequentialLocalRatio(g, pick)
				if !g.IsIndependentSet(in) {
					t.Fatalf("trial %d: output not independent", trial)
				}
				ratioBoundIS(t, g, g.SetWeight(in), name)
			}
		})
	}
}

func TestSequentialLocalRatioOnStar(t *testing.T) {
	// The §2.1 example: center heavier than any leaf but lighter than their
	// sum. The local-ratio algorithm must return a non-trivial set.
	g := graph.Star(5)
	g.SetNodeWeight(0, 10)
	for v := 1; v < 5; v++ {
		g.SetNodeWeight(v, 4)
	}
	in := SequentialLocalRatio(g, GreedyPick)
	if !g.IsIndependentSet(in) {
		t.Fatal("not independent")
	}
	w := g.SetWeight(in)
	// OPT = 16 (all leaves); ∆ = 4; guarantee ≥ 4.
	if w < 4 {
		t.Fatalf("weight %d below the ∆-approximation floor", w)
	}
}

func TestNaiveSimultaneousFailsOnStar(t *testing.T) {
	// The motivating failure: naive simultaneous reduction selects nothing.
	g := graph.Star(5)
	g.SetNodeWeight(0, 10)
	for v := 1; v < 5; v++ {
		g.SetNodeWeight(v, 4)
	}
	in := NaiveSimultaneousLocalRatio(g)
	if g.SetWeight(in) != 0 {
		t.Fatalf("naive algorithm unexpectedly selected weight %d; the ablation premise broke", g.SetWeight(in))
	}
	// While Algorithm 2 on the same instance returns something.
	res, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < 4 {
		t.Fatalf("Algorithm 2 weight %d below floor on the star", res.Weight)
	}
}

func TestAlgorithm2Approximation(t *testing.T) {
	r := rng.New(2)
	for _, misName := range []string{"luby", "ghaffari", "greedyid"} {
		misName := misName
		t.Run(misName, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				g := graph.GNP(20, 0.2, r.Split(uint64(trial)))
				graph.AssignUniformNodeWeights(g, 64, r.Split(uint64(300+trial)))
				res, err := DistributedMaxIS(g, misName, simul.Config{Seed: uint64(trial)})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !g.IsIndependentSet(res.InSet) {
					t.Fatalf("trial %d: output not independent", trial)
				}
				if g.SetWeight(res.InSet) != res.Weight {
					t.Fatalf("trial %d: reported weight %d != actual", trial, res.Weight)
				}
				ratioBoundIS(t, g, res.Weight, misName)
			}
		})
	}
}

func TestAlgorithm2WindowScaling(t *testing.T) {
	// Theorem 2.3: windows ≤ log W + O(1); each window empties the topmost
	// weight layer.
	r := rng.New(3)
	for _, maxW := range []int64{1, 16, 1 << 12} {
		g := graph.GNP(48, 0.12, r.Split(uint64(maxW)))
		graph.AssignUniformNodeWeights(g, maxW, r.Split(uint64(maxW)+99))
		res, err := DistributedMaxIS(g, "luby", simul.Config{Seed: uint64(maxW)})
		if err != nil {
			t.Fatal(err)
		}
		logW := layerOf(maxW) + 1
		if int64(res.Windows) > 2*logW+3 {
			t.Errorf("W=%d: %d windows, want ≤ %d", maxW, res.Windows, 2*logW+3)
		}
	}
}

func TestAlgorithm2Congest(t *testing.T) {
	g := graph.GNP(64, 0.1, rng.New(4))
	graph.AssignUniformNodeWeights(g, 1000, rng.New(5))
	res, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 6, Model: simul.CONGEST})
	if err != nil {
		t.Fatalf("CONGEST violation: %v", err)
	}
	if res.Metrics.BitBudget == 0 || res.Metrics.MaxMessageBits > res.Metrics.BitBudget {
		t.Fatalf("bit accounting broken: %+v", res.Metrics)
	}
}

func TestAlgorithm2DeterministicAcrossEngines(t *testing.T) {
	g := graph.GNP(30, 0.2, rng.New(7))
	graph.AssignUniformNodeWeights(g, 100, rng.New(8))
	a, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 9, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("engines disagree on Algorithm 2 output")
		}
	}
}

func TestAlgorithm3Approximation(t *testing.T) {
	r := rng.New(10)
	for _, det := range []bool{false, true} {
		for trial := 0; trial < 8; trial++ {
			g := graph.GNP(20, 0.2, r.Split(uint64(trial)))
			graph.AssignUniformNodeWeights(g, 64, r.Split(uint64(700+trial)))
			res, err := ColoringMaxIS(g, det, simul.Config{Seed: uint64(trial)})
			if err != nil {
				t.Fatalf("det=%v trial %d: %v", det, trial, err)
			}
			if !g.IsIndependentSet(res.InSet) {
				t.Fatalf("det=%v trial %d: not independent", det, trial)
			}
			ratioBoundIS(t, g, res.Weight, "algorithm3")
		}
	}
}

func TestAlgorithm3FullyDeterministic(t *testing.T) {
	g := graph.GNP(25, 0.25, rng.New(11))
	graph.AssignUniformNodeWeights(g, 30, rng.New(12))
	a, err := ColoringMaxIS(g, true, simul.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColoringMaxIS(g, true, simul.Config{Seed: 12345, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("deterministic Algorithm 3 output depends on the seed")
		}
	}
}

func TestAlgorithm3CycleScaling(t *testing.T) {
	// The removal stage runs one cycle per color: with a (∆+1)-coloring the
	// virtual rounds are O(∆), independent of n.
	r := rng.New(13)
	for _, d := range []int{2, 4, 8} {
		g, err := graph.RandomRegular(60, d, r.Split(uint64(d)))
		if err != nil {
			t.Fatal(err)
		}
		graph.AssignUniformNodeWeights(g, 1000, r.Split(uint64(d)+5))
		res, err := ColoringMaxIS(g, false, simul.Config{Seed: uint64(d)})
		if err != nil {
			t.Fatal(err)
		}
		// 2 rounds per color cycle + addition cascade; generous constant.
		if res.VirtualRounds > 8*(d+2) {
			t.Errorf("∆=%d: %d virtual rounds, want O(∆)", d, res.VirtualRounds)
		}
	}
}

func TestMWM2Approximation(t *testing.T) {
	r := rng.New(14)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNP(14, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		graph.AssignUniformEdgeWeights(g, 40, r.Split(uint64(800+trial)))
		_, opt, err := exact.MaxWeightMatchingBrute(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []string{"alg2", "alg3"} {
			var got *MatchingResult
			if algo == "alg2" {
				got, err = DistributedMWM2(g, "luby", simul.Config{Seed: uint64(trial)})
			} else {
				got, err = ColoringMWM2(g, simul.Config{Seed: uint64(trial)})
			}
			if err != nil {
				t.Fatalf("%s trial %d: %v", algo, trial, err)
			}
			if !g.IsMatching(got.Edges) {
				t.Fatalf("%s trial %d: output not a matching", algo, trial)
			}
			if g.MatchingWeight(got.Edges) != got.Weight {
				t.Fatalf("%s trial %d: weight mismatch", algo, trial)
			}
			if 2*got.Weight < opt {
				t.Fatalf("%s trial %d: weight %d violates 2-approximation (OPT=%d)", algo, trial, got.Weight, opt)
			}
		}
	}
}

func TestMWM2MatchesExplicitLineGraphRun(t *testing.T) {
	// Theorem 2.9 + 2.8 end to end: Algorithm 2 through the line-graph
	// runtime must equal Algorithm 2 run directly on an explicit L(G).
	g := graph.GNP(12, 0.3, rng.New(15))
	graph.AssignUniformEdgeWeights(g, 20, rng.New(16))
	mwm, err := DistributedMWM2(g, "luby", simul.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	lg := g.LineGraph()
	direct, err := DistributedMaxIS(lg, "luby", simul.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	chosen := make(map[int]bool, len(mwm.Edges))
	for _, e := range mwm.Edges {
		chosen[e] = true
	}
	for e := 0; e < g.M(); e++ {
		if direct.InSet[e] != chosen[e] {
			t.Fatalf("edge %d: line runtime chose %v, explicit L(G) chose %v", e, chosen[e], direct.InSet[e])
		}
	}
}

func TestMWM2Congest(t *testing.T) {
	g := graph.GNP(32, 0.15, rng.New(18))
	graph.AssignUniformEdgeWeights(g, 500, rng.New(19))
	if _, err := DistributedMWM2(g, "luby", simul.Config{Seed: 20, Model: simul.CONGEST}); err != nil {
		t.Fatalf("MWM on L(G) violated CONGEST: %v", err)
	}
}

func TestMWM2OnBipartiteAgainstHungarian(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 6; trial++ {
		g, side := graph.RandomBipartite(10, 10, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		graph.AssignUniformEdgeWeights(g, 100, r.Split(uint64(900+trial)))
		_, opt, err := exact.MaxWeightBipartiteMatching(g, side)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DistributedMWM2(g, "luby", simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if 2*got.Weight < opt {
			t.Fatalf("trial %d: 2·%d < OPT=%d", trial, got.Weight, opt)
		}
	}
}

func TestDistributedMaxISUnknownMIS(t *testing.T) {
	if _, err := DistributedMaxIS(graph.Path(3), "nope", simul.Config{}); err == nil {
		t.Fatal("unknown MIS black box accepted")
	}
	if _, err := DistributedMWM2(graph.Path(3), "nope", simul.Config{}); err == nil {
		t.Fatal("unknown MIS black box accepted for matching")
	}
}

func TestAlgorithm2OnUnitWeights(t *testing.T) {
	// All-equal weights collapse to a single layer: the algorithm becomes
	// "MIS then add" and must produce a maximal independent set.
	g := graph.GNP(30, 0.2, rng.New(22))
	res, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.InSet) {
		t.Fatal("not independent")
	}
	ratioBoundIS(t, g, res.Weight, "unit weights")
}

func TestAlgorithm2Structured(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star":     graph.Star(16),
		"path":     graph.Path(20),
		"cycle":    graph.Cycle(15),
		"complete": graph.Complete(10),
		"edgeless": graph.NewBuilder(8).MustBuild(),
		"single":   graph.NewBuilder(1).MustBuild(),
	} {
		res, err := DistributedMaxIS(g, "luby", simul.Config{Seed: 24})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.IsIndependentSet(res.InSet) {
			t.Fatalf("%s: not independent", name)
		}
		if g.N() <= 64 {
			ratioBoundIS(t, g, res.Weight, name)
		}
	}
}
