package core

import (
	"repro/internal/agg"
	"repro/internal/mis"
)

// Data field layout shared by Algorithm 2 and Algorithm 3 machines. The
// fields are exactly the D_{v,i} = {w_i(v), status_v, …} of Theorem 2.9's
// proof, extended with the bookkeeping the addition stage needs.
const (
	fStatus   = 0 // one of the st* constants below
	fWeight   = 1 // current (reduced) weight w_v(v)
	fLayer    = 2 // ⌈log₂ w⌉ while waiting/ready; -1 afterwards
	fCandTime = 3 // iteration at which the node became a candidate; -1 before
	fReduce   = 4 // weight broadcast for subtraction in the apply round
	numShared = 5
)

// Node statuses (paper: waiting / ready / candidate / removed, §2.2). Removed
// nodes simply halt — under the aggregation semantics, leaving the
// computation is the removed(v) message. stInISAnnounce is the one-round
// addedToIS(v) broadcast before an accepted candidate halts.
const (
	stWaiting      = 0
	stReady        = 1
	stCandidate    = 2
	stInISAnnounce = 3
)

// additionPlan is appended to every round's query set: it drives the
// addition stage, in which a candidate may enter the independent set once
// every neighbor with precedence over it has decided (§2.2). Precedence =
// removed later = larger candidate timestamp, plus every neighbor still in
// the removal stage. The projections read only the shared fields, so one
// package-level plan serves Algorithms 2 and 3 alike.
var additionPlan = [3]agg.Query{
	// Latest candidate timestamp among live candidate neighbors.
	{Agg: agg.Max, Proj: func(nd agg.Data) int64 {
		if nd[fStatus] == stCandidate {
			return nd[fCandTime]
		}
		return -1
	}},
	// Did a neighbor just enter the independent set?
	{Agg: agg.Or, Proj: func(nd agg.Data) int64 {
		if nd[fStatus] == stInISAnnounce {
			return 1
		}
		return 0
	}},
	// Is any neighbor still in the removal stage?
	{Agg: agg.Or, Proj: func(nd agg.Data) int64 {
		if nd[fStatus] == stWaiting || nd[fStatus] == stReady {
			return 1
		}
		return 0
	}},
}

// reducePlan sums the reduce amounts published by candidate neighbors — the
// apply half of the local-ratio weight reduction, shared by both machines.
var reducePlan = [1]agg.Query{
	{Agg: agg.Sum, Proj: func(nd agg.Data) int64 {
		return nd[fReduce]
	}},
}

// handleAddition advances the addition stage. results must be the three
// additionQueries results. It returns (halt, output, handled): handled means
// the node is in the addition stage and the phase logic must not touch it.
func handleAddition(data agg.Data, results []int64) (bool, any, bool) {
	maxCandTime, neighborJoined, removalActive := results[0], results[1], results[2]
	switch data[fStatus] {
	case stInISAnnounce:
		// Membership was visible to all neighbors last round; leave now.
		return true, true, true
	case stCandidate:
		// The reduce amount published when the candidacy began has been
		// consumed by the neighborhood's apply round by the time this runs
		// again; clear it so later apply rounds do not re-subtract it.
		data[fReduce] = 0
		if neighborJoined != 0 {
			// A neighbor with precedence joined the set: we are removed
			// (paper line 35-37). Leaving silently is the removed(v) message.
			return true, false, true
		}
		if removalActive == 0 && maxCandTime <= data[fCandTime] {
			// Every neighbor with precedence has decided and none joined:
			// announce membership, halt next round.
			data[fStatus] = stInISAnnounce
			return false, nil, true
		}
		return false, nil, true
	default:
		return false, nil, false
	}
}

// algorithm2 is the distributed layered MaxIS machine (Algorithm 2). One
// "iteration" of the paper occupies a fixed window of T = misT+3 virtual
// rounds, globally agreed:
//
//	τ = 0        sync: nodes with no live waiting neighbor in a higher
//	             weight layer become ready and enter the MIS instance
//	             (topmost-layer nodes never wait — Lemma A.1);
//	τ = 1..misT  the black-box MIS protocol runs among ready nodes;
//	τ = misT+1   MIS members become candidates: they zero their own weight
//	             and publish it as the reduce amount (the reduce(w) message);
//	             losers return to waiting for the next window;
//	τ = misT+2   everyone applies Σ reduce over the neighborhood; nodes
//	             whose weight drops ≤ 0 are removed (halt with NotInIS).
//
// A randomized MIS that misses its window leaves stragglers undecided; they
// rejoin the next window, which preserves correctness (footnote 3).
type algorithm2 struct {
	sub  mis.Sub
	misT int
}

// newAlgorithm2 builds the machine for one virtual node. n is the number of
// virtual nodes (fixes the MIS window budget).
func newAlgorithm2(factory mis.SubFactory, n int) *algorithm2 {
	sub := factory(numShared, func(nd agg.Data) bool { return nd[fStatus] == stReady })
	return &algorithm2{sub: sub, misT: sub.WindowRounds(n)}
}

func (m *algorithm2) window() int { return m.misT + 3 }

func (m *algorithm2) Fields() int { return numShared + m.sub.Fields() }

// waitingLayerPlan asks for the highest weight layer among live waiting
// neighbors (the sync round's gate).
var waitingLayerPlan = [1]agg.Query{
	{Agg: agg.Max, Proj: func(nd agg.Data) int64 {
		if nd[fStatus] == stWaiting {
			return nd[fLayer]
		}
		return -1
	}},
}

func (m *algorithm2) Init(info *agg.NodeInfo, d agg.Data) {
	d[fStatus] = stWaiting
	d[fWeight] = info.Weight
	d[fLayer] = layerOf(info.Weight)
	d[fCandTime] = -1
	d[fReduce] = 0
	m.sub.Begin(info, d, false)
}

func (m *algorithm2) Queries(info *agg.NodeInfo, t int, data agg.Data, qs []agg.Query) []agg.Query {
	τ := t % m.window()
	switch {
	case τ == 0:
		qs = append(qs, waitingLayerPlan[:]...)
	case τ <= m.misT:
		qs = m.sub.Queries(info, τ-1, data, qs)
	case τ == m.misT+1:
		// bookkeeping round; addition queries only
	default: // τ == misT+2: apply reductions
		qs = append(qs, reducePlan[:]...)
	}
	return append(qs, additionPlan[:]...)
}

func (m *algorithm2) Update(info *agg.NodeInfo, t int, data agg.Data, results []int64) (bool, any) {
	τ := t % m.window()
	phaseResults := results[:len(results)-3]
	if halt, out, handled := handleAddition(data, results[len(results)-3:]); handled {
		return halt, out
	}
	switch {
	case τ == 0:
		maxWaitingLayer := phaseResults[0]
		active := data[fStatus] == stWaiting && data[fLayer] >= maxWaitingLayer
		if active {
			data[fStatus] = stReady
		}
		m.sub.Begin(info, data, active)
	case τ <= m.misT:
		m.sub.Update(info, τ-1, data, phaseResults)
	case τ == m.misT+1:
		if data[fStatus] != stReady {
			break
		}
		if m.sub.Decided(data) && m.sub.InMIS(data) {
			// reduce(w_v(v)) to all neighbors; own weight drops to zero
			// (the closed-neighborhood weight split of Lemma 2.2).
			data[fStatus] = stCandidate
			data[fCandTime] = int64(t / m.window())
			data[fReduce] = data[fWeight]
			data[fWeight] = 0
			data[fLayer] = -1
		} else {
			data[fStatus] = stWaiting
		}
	default: // apply
		data[fWeight] -= phaseResults[0]
		if data[fWeight] <= 0 {
			// Removed: output NotInIS and leave (the removed(v) message is
			// our disappearance).
			return true, false
		}
		data[fLayer] = layerOf(data[fWeight])
	}
	return false, nil
}
