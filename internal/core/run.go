package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/simul"
)

// MaxISResult is the outcome of a distributed MaxIS approximation.
type MaxISResult struct {
	InSet  []bool
	Weight int64
	// VirtualRounds counts algorithm rounds; Windows the number of MIS
	// windows (Algorithm 2) or color cycles (Algorithm 3) used.
	VirtualRounds int
	Windows       int
	// ColoringRounds counts the rounds of the coloring preprocessing
	// (Algorithm 3 only), reported separately per DESIGN.md §3.
	ColoringRounds int
	Metrics        simul.Metrics
	// Memo totals the line runtime's exchange-folding hit/miss counts over
	// every phase (zero for the direct runtime).
	Memo agg.MemoStats
}

// MatchingResult is the outcome of a distributed matching approximation.
type MatchingResult struct {
	Edges  []int
	Weight int64
	// VirtualRounds counts algorithm rounds on the line graph;
	// Metrics.Rounds counts real CONGEST rounds on G (2× per Theorem 2.8).
	VirtualRounds  int
	ColoringRounds int
	Metrics        simul.Metrics
	// Memo totals the exchange-folding memo's hit/miss counts over every
	// phase of the line simulation.
	Memo agg.MemoStats
}

// DistributedMaxIS runs Algorithm 2 on g with the named MIS black box
// ("luby", "ghaffari" or "greedyid") and returns a ∆-approximate maximum
// weight independent set in O(MIS(G)·log W) rounds w.h.p. (Theorem 2.3).
func DistributedMaxIS(g *graph.Graph, misName string, cfg simul.Config) (*MaxISResult, error) {
	factory, err := mis.Factory(misName)
	if err != nil {
		return nil, err
	}
	// One machine serves every node: algorithm2 (and the Subs it embeds)
	// keeps all per-node state in the Data vector, and sharing the instance
	// makes every precomputed query plan shared too, which is what lets the
	// line/direct runtimes answer "all neighbors except me" partials from
	// per-node prefix/suffix folds instead of O(∆) work per virtual node.
	m := newAlgorithm2(factory, g.N())
	res, err := agg.RunDirect(g, cfg, func(v int) agg.Machine { return m })
	if err != nil {
		return nil, fmt.Errorf("core: algorithm 2 on %d nodes: %w", g.N(), err)
	}
	return buildMaxISResult(g, res, m.window())
}

// ColoringMaxIS runs Algorithm 3 on g: a coloring phase (deterministic Linial
// reduction if deterministic is true, randomized palette otherwise) followed
// by the color-priority local-ratio machine. Total round complexity is
// O(∆ + coloring) (§2.3).
func ColoringMaxIS(g *graph.Graph, deterministic bool, cfg simul.Config) (*MaxISResult, error) {
	var col *coloring.Result
	var err error
	if deterministic {
		col, err = coloring.LinialDeterministic(g, cfg)
	} else {
		col, err = coloring.RandomGreedy(g, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: coloring phase: %w", err)
	}
	machines := algorithm3ByColor(col.NumColors)
	res, err := agg.RunDirect(g, cfg, func(v int) agg.Machine {
		return machines(col.Colors[v])
	})
	if err != nil {
		return nil, fmt.Errorf("core: algorithm 3: %w", err)
	}
	out, err := buildMaxISResult(g, res, 2)
	if err != nil {
		return nil, err
	}
	out.ColoringRounds = col.VirtualRounds
	out.Metrics.Merge(col.Metrics)
	out.Memo.Add(col.Memo)
	return out, nil
}

// algorithm3ByColor returns a lazily-filled color → shared machine table:
// algorithm3 is stateless apart from its color, so nodes of one color class
// share a single instance (and therefore its query plans).
func algorithm3ByColor(numColors int) func(color int) agg.Machine {
	machines := make([]*algorithm3, numColors)
	return func(color int) agg.Machine {
		if machines[color] == nil {
			machines[color] = newAlgorithm3(color)
		}
		return machines[color]
	}
}

func buildMaxISResult(g *graph.Graph, res *agg.Result, window int) (*MaxISResult, error) {
	out := &MaxISResult{
		InSet:         make([]bool, g.N()),
		VirtualRounds: res.VirtualRounds,
		Windows:       (res.VirtualRounds + window - 1) / max(window, 1),
		Metrics:       res.Metrics,
		Memo:          res.Memo,
	}
	for v, o := range res.Outputs {
		b, ok := o.(bool)
		if !ok {
			return nil, fmt.Errorf("core: node %d output %v, want bool", v, o)
		}
		out.InSet[v] = b
		if b {
			out.Weight += g.NodeWeight(v)
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DistributedMWM2 computes a 2-approximate maximum weight matching by
// executing Algorithm 2 on the line graph L(g) through the congestion-free
// simulation of Theorem 2.8 (Theorem 2.10, randomized variant). Round
// complexity O(MIS·log W) virtual rounds, 2× that in real CONGEST rounds.
func DistributedMWM2(g *graph.Graph, misName string, cfg simul.Config) (*MatchingResult, error) {
	factory, err := mis.Factory(misName)
	if err != nil {
		return nil, err
	}
	// As in DistributedMaxIS, one stateless machine serves every edge.
	m := newAlgorithm2(factory, g.M())
	res, err := agg.RunLine(g, cfg, func(e int) agg.Machine { return m })
	if err != nil {
		return nil, fmt.Errorf("core: algorithm 2 on L(G) with %d edges: %w", g.M(), err)
	}
	return buildMatchingResult(g, res)
}

// ColoringMWM2 computes a 2-approximate maximum weight matching by running
// Algorithm 3 on L(g): a (∆_L+1)-coloring of the line graph (randomized
// palette, executed through Theorem 2.8) followed by the color-priority
// machine (Theorem 2.10, deterministic-reduction variant; see DESIGN.md §3
// on the coloring black box).
func ColoringMWM2(g *graph.Graph, cfg simul.Config) (*MatchingResult, error) {
	col, err := coloring.RandomGreedyOnLine(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: line-graph coloring: %w", err)
	}
	machines := algorithm3ByColor(col.NumColors)
	res, err := agg.RunLine(g, cfg, func(e int) agg.Machine {
		return machines(col.Colors[e])
	})
	if err != nil {
		return nil, fmt.Errorf("core: algorithm 3 on L(G): %w", err)
	}
	out, err := buildMatchingResult(g, res)
	if err != nil {
		return nil, err
	}
	out.ColoringRounds = col.VirtualRounds
	out.Metrics.Merge(col.Metrics)
	out.Memo.Add(col.Memo)
	return out, nil
}

func buildMatchingResult(g *graph.Graph, res *agg.Result) (*MatchingResult, error) {
	out := &MatchingResult{VirtualRounds: res.VirtualRounds, Metrics: res.Metrics, Memo: res.Memo}
	for e, o := range res.Outputs {
		b, ok := o.(bool)
		if !ok {
			return nil, fmt.Errorf("core: edge %d output %v, want bool", e, o)
		}
		if b {
			out.Edges = append(out.Edges, e)
			out.Weight += g.EdgeWeight(e)
		}
	}
	return out, nil
}
