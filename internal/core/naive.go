package core

import "repro/internal/graph"

// NaiveSimultaneousLocalRatio is the straw man from §2.1: every alive node
// performs the local-ratio weight reduction simultaneously, without first
// electing an independent set. Nodes whose weight drops to zero or below are
// removed outright; a node is selected only if it outlives all its neighbors.
//
// On a star whose center outweighs each leaf but not their sum, one iteration
// drives every weight negative and the algorithm returns the empty set — an
// unbounded approximation failure. This function exists as the ablation
// baseline (experiment E7) demonstrating why Algorithm 2 gates reductions
// behind an MIS.
func NaiveSimultaneousLocalRatio(g *graph.Graph) []bool {
	n := g.N()
	w := make([]int64, n)
	alive := make([]bool, n)
	liveCount := 0
	for v := 0; v < n; v++ {
		w[v] = g.NodeWeight(v)
		alive[v] = true
		liveCount++
	}
	in := make([]bool, n)
	for liveCount > 0 {
		// Simultaneous reduction: every alive node subtracts each alive
		// neighbor's current weight.
		delta := make([]int64, n)
		for _, e := range g.Edges() {
			if alive[e.U] && alive[e.V] {
				delta[e.U] += w[e.V]
				delta[e.V] += w[e.U]
			}
		}
		progress := false
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			if delta[v] == 0 {
				// Isolated survivor: selected.
				in[v] = true
				alive[v] = false
				liveCount--
				progress = true
				continue
			}
			w[v] -= delta[v]
			if w[v] <= 0 {
				alive[v] = false
				liveCount--
				progress = true
			}
		}
		if !progress {
			// Cannot happen (weights strictly decrease while neighbors
			// remain), but guard against livelock anyway.
			break
		}
	}
	return in
}
