// Package repro is a from-scratch Go reproduction of
//
//	Bar-Yehuda, Censor-Hillel, Ghaffari, Schwartzman:
//	"Distributed Approximation of Maximum Independent Set and Maximum
//	Matching", PODC 2017 (arXiv:1708.00276),
//
// including every substrate the paper's algorithms need: a synchronous
// CONGEST/LOCAL round simulator with message-bit accounting, MIS and coloring
// black boxes, the local-aggregation line-graph machinery of Theorem 2.8, and
// exact combinatorial baselines for evaluating approximation ratios.
//
// The facade exposes the paper's headline results:
//
//	MaxIS              ∆-approximate MaxIS, O(MIS(G)·log W) rounds (Thm 2.3)
//	MaxISDeterministic ∆-approximate MaxIS, O(∆ + log* n)-style (§2.3)
//	MWM2               2-approximate weighted matching on L(G) (Thm 2.10)
//	MWM2Deterministic  deterministic-reduction variant of the same
//	FastMCM            (2+ε)-approximate matching, O(log∆/loglog∆) (Thm 3.2)
//	FastMWM            (2+ε)-approximate weighted matching (§B.1)
//	OneEpsMCM          (1+ε)-approximate matching (Thm B.4, LOCAL)
//	ProposalMCM        the alternative (2+ε) proposal algorithm (§B.4)
//	NearlyMaximalIS    the §3.1 nearly-maximal independent set (Thm 3.1)
//	SequentialMaxIS    Algorithm 1, the sequential local-ratio meta-algorithm
//
// Every facade function dispatches through the internal algorithm registry,
// which also powers the string-keyed Run (see Algorithms for names), the
// cmd/distmatch, cmd/sweep and cmd/benchtab CLIs, and the cmd/reprod job
// service — identical seeds give identical results across all of them.
//
// Graphs are built with the re-exported constructors (NewGraphBuilder, GNP,
// RandomRegular, …). All algorithms are deterministic given WithSeed.
package repro

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/rng"
)

// Graph is the undirected node- and edge-weighted graph all algorithms run
// on. Topology is an immutable CSR structure: build graphs with
// NewGraphBuilder or the generators below, and amend built graphs with
// Graph.WithEdges.
type Graph = graph.Graph

// GraphBuilder accumulates edges and freezes them into an immutable Graph.
type GraphBuilder = graph.Builder

// GraphEdge is an undirected edge in canonical form (U < V).
type GraphEdge = graph.Edge

// Graph constructors re-exported from the graph substrate.
var (
	NewGraphBuilder = graph.NewBuilder
	Star            = graph.Star
	Path            = graph.Path
	Cycle           = graph.Cycle
	Complete        = graph.Complete
	Grid            = graph.Grid
	Caterpillar     = graph.Caterpillar
	EncodeGraph     = graph.Encode
	DecodeGraph     = graph.Decode
)

// GNP returns an Erdős–Rényi G(n, p) graph drawn with the given seed.
func GNP(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// RandomRegular returns a random d-regular graph drawn with the given seed.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, rng.New(seed))
}

// RandomBipartite returns a random bipartite graph and its sides.
func RandomBipartite(nl, nr int, p float64, seed uint64) (*Graph, []int) {
	return graph.RandomBipartite(nl, nr, p, rng.New(seed))
}

// RandomTree returns a uniform random labeled tree.
func RandomTree(n int, seed uint64) *Graph {
	return graph.RandomTree(n, rng.New(seed))
}

// AssignUniformNodeWeights draws node weights uniformly from [1, maxW].
func AssignUniformNodeWeights(g *Graph, maxW int64, seed uint64) {
	graph.AssignUniformNodeWeights(g, maxW, rng.New(seed))
}

// AssignUniformEdgeWeights draws edge weights uniformly from [1, maxW].
func AssignUniformEdgeWeights(g *Graph, maxW int64, seed uint64) {
	graph.AssignUniformEdgeWeights(g, maxW, rng.New(seed))
}

// CostStats summarizes the communication cost of a distributed execution.
type CostStats struct {
	// Rounds is the algorithm's round complexity (virtual rounds of the
	// machine; for line-graph executions real rounds are 2× this, and they
	// are reported in RealRounds).
	Rounds int
	// RealRounds, Messages and Bits are the synchronous network rounds,
	// message count and total message bits actually used.
	RealRounds int
	Messages   int
	Bits       int
	// MaxMessageBits and BitBudget document CONGEST compliance: the largest
	// message sent vs the enforced per-message budget (0 in LOCAL).
	MaxMessageBits int
	BitBudget      int
}

// ISResult is an independent-set answer.
type ISResult struct {
	InSet  []bool
	Weight int64
	Cost   CostStats
}

// MatchingResult is a matching answer (edge IDs of the input graph).
type MatchingResult struct {
	Edges  []int
	Weight int64
	Cost   CostStats
}

// SequentialMaxIS runs Algorithm 1, the sequential local-ratio
// ∆-approximation (§2.1), with the default greedy independent-set selection.
func SequentialMaxIS(g *Graph) *ISResult {
	res, err := runSpec("seq-maxis", g, nil)
	if err != nil {
		// seq-maxis takes no parameters, so the registry cannot reject it.
		panic("repro: seq-maxis: " + err.Error())
	}
	out, _ := isResult(res, nil)
	return out
}

// isResult converts a registry answer into the typed IS facade result.
func isResult(res *registry.Result, err error) (*ISResult, error) {
	if err != nil {
		return nil, err
	}
	return &ISResult{InSet: res.InSet, Weight: res.Weight, Cost: costFromRegistry(res.Cost)}, nil
}

// matchingResult converts a registry answer into the typed matching result.
func matchingResult(res *registry.Result, err error) (*MatchingResult, error) {
	if err != nil {
		return nil, err
	}
	return &MatchingResult{Edges: res.Edges, Weight: res.Weight, Cost: costFromRegistry(res.Cost)}, nil
}

// MaxIS runs Algorithm 2: the distributed ∆-approximate maximum weight
// independent set in O(MIS(G)·log W) rounds (Theorem 2.3).
func MaxIS(g *Graph, opts ...Option) (*ISResult, error) {
	return isResult(runSpec("maxis", g, opts))
}

// MaxISDeterministic runs Algorithm 3 (§2.3): coloring followed by
// color-priority local ratio. With WithDeterministicColoring the coloring
// phase uses the Linial reduction, making the whole pipeline deterministic.
func MaxISDeterministic(g *Graph, opts ...Option) (*ISResult, error) {
	return isResult(runSpec("maxis-det", g, opts))
}

// MWM2 computes a 2-approximate maximum weight matching: Algorithm 2
// executed on the line graph through the Theorem 2.8 simulation
// (Theorem 2.10).
func MWM2(g *Graph, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("mwm2", g, opts))
}

// MWM2Deterministic computes a 2-approximate maximum weight matching via
// Algorithm 3 on the line graph (coloring + color-priority reduction).
func MWM2Deterministic(g *Graph, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("mwm2-det", g, opts))
}

// FastMCM computes a (2+ε)-approximate maximum cardinality matching in
// O(log∆/loglog∆)-style rounds: the §3.1 nearly-maximal independent set on
// the line graph (Theorem 3.2).
func FastMCM(g *Graph, eps float64, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("fastmcm", g, opts, WithEps(eps)))
}

// FastMWM computes a (2+ε)-approximate maximum weight matching via weight
// bucketing plus augmenting refinement (§B.1).
func FastMWM(g *Graph, eps float64, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("fastmwm", g, opts, WithEps(eps)))
}

// OneEpsMCM computes a (1+ε)-approximate maximum cardinality matching via
// Hopcroft–Karp phases with nearly-maximal hypergraph matchings
// (Theorem B.4; LOCAL model).
func OneEpsMCM(g *Graph, eps float64, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("oneeps", g, opts, WithEps(eps)))
}

// OneEpsMCMCongest computes a (1+ε)-approximate maximum cardinality matching
// using the CONGEST-model construction of Appendix B.3: random bipartitions,
// attenuated path-mass traversals (Claims B.5/B.6) and link-by-link token
// marking, with no explicit conflict graph.
func OneEpsMCMCongest(g *Graph, eps float64, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("oneeps-congest", g, opts, WithEps(eps)))
}

// ProposalMCM computes a (2+ε)-approximate maximum cardinality matching via
// the Appendix B.4 proposal algorithm.
func ProposalMCM(g *Graph, eps float64, opts ...Option) (*MatchingResult, error) {
	return matchingResult(runSpec("proposal", g, opts, WithEps(eps)))
}

// NMISResult reports a nearly-maximal independent set run (Theorem 3.1).
type NMISResult struct {
	InSet     []bool
	Uncovered int
	Cost      CostStats
}

// NearlyMaximalIS runs the §3.1 algorithm for its Theorem 3.1 round budget
// with factor K and failure target delta.
func NearlyMaximalIS(g *Graph, k int, delta float64, opts ...Option) (*NMISResult, error) {
	res, err := runSpec("nmis", g, opts, WithK(k), WithDelta(delta))
	if err != nil {
		return nil, err
	}
	return &NMISResult{
		InSet:     res.InSet,
		Uncovered: res.Uncovered,
		Cost:      costFromRegistry(res.Cost),
	}, nil
}

// WriteGraph encodes g to w in the text format understood by cmd/distmatch.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g) }

// CheckIndependentSet returns an error unless in is an independent set of g.
func CheckIndependentSet(g *Graph, in []bool) error {
	if !g.IsIndependentSet(in) {
		return fmt.Errorf("repro: set is not independent")
	}
	return nil
}

// CheckMatching returns an error unless edges form a matching in g.
func CheckMatching(g *Graph, edges []int) error {
	if !g.IsMatching(edges) {
		return fmt.Errorf("repro: edge set is not a matching")
	}
	return nil
}
