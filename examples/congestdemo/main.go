// Congestdemo: shows the CONGEST machinery that distinguishes this
// reproduction from a plain algorithm library. It runs the same local
// aggregation machine on the line graph twice — once through the paper's
// Theorem 2.8 simulation, once through the naive per-edge relay — and prints
// rounds, messages and bit counts, demonstrating the Θ(∆) congestion gap and
// the per-message bit budget.
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/nmis"
	"repro/internal/simul"
)

func main() {
	log.SetFlags(0)

	// A star maximizes ∆ and therefore the naive simulation's penalty.
	g := graph.Star(64)
	fmt.Printf("star graph: n=%d, ∆=%d, edges=%d\n", g.N(), g.MaxDegree(), g.M())
	fmt.Println("workload: nearly-maximal matching machine (§3.1) on L(G)")
	fmt.Println()

	build, err := nmis.NewMachine(nmis.Params{K: 2, Delta: 0.2, MaxDegree: 2 * g.MaxDegree()})
	if err != nil {
		log.Fatal(err)
	}

	smart, err := agg.RunLine(g, simul.Config{Seed: 1}, func(e int) agg.Machine { return build(e) })
	if err != nil {
		log.Fatal(err)
	}
	naive, err := agg.RunLineNaive(g, simul.Config{Seed: 1, Model: simul.LOCAL}, func(e int) agg.Machine { return build(e) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %10s %10s %12s %14s\n", "simulation", "rounds", "messages", "total bits", "max msg bits")
	fmt.Printf("%-28s %10d %10d %12d %14d\n",
		"Theorem 2.8 (aggregation)", smart.Metrics.Rounds, smart.Metrics.Messages,
		smart.Metrics.TotalBits, smart.Metrics.MaxMessageBits)
	fmt.Printf("%-28s %10d %10d %12d %14d\n",
		"naive per-edge relay", naive.Metrics.Rounds, naive.Metrics.Messages,
		naive.Metrics.TotalBits, naive.Metrics.MaxMessageBits)
	fmt.Println()
	fmt.Printf("round inflation of the naive simulation: %.1f× (theory: Θ(∆) = %d)\n",
		float64(naive.Metrics.Rounds)/float64(smart.Metrics.Rounds), g.MaxDegree())
	fmt.Printf("CONGEST budget enforced for the aggregation run: %d bits/message\n", smart.Metrics.BitBudget)
	fmt.Println()

	// Both simulations compute the same answer.
	same := true
	for e := range smart.Outputs {
		if smart.Outputs[e] != naive.Outputs[e] {
			same = false
			break
		}
	}
	fmt.Printf("identical outputs across simulations: %v\n", same)
}
