// Auction: weighted bipartite assignment of jobs to machines, the standard
// maximum-weight-matching workload. Bids are edge weights; the distributed
// 2-approximation (Theorem 2.10) and the time-optimal (2+ε) matcher (§B.1)
// run with no central auctioneer, and the Hungarian algorithm provides the
// exact clearing price for comparison.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/exact"
)

func main() {
	log.SetFlags(0)

	const jobs, machines = 20, 20
	g, side := repro.RandomBipartite(jobs, machines, 0.3, 11)
	repro.AssignUniformEdgeWeights(g, 1000, 12) // bids
	fmt.Printf("jobs=%d machines=%d bids=%d\n\n", jobs, machines, g.M())

	_, opt, err := exact.MaxWeightBipartiteMatching(g, side)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact clearing value (Hungarian): %d\n\n", opt)

	two, err := repro.MWM2(g, repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MWM2 (Thm 2.10):  value=%d  ratio=%.3f  rounds=%d\n",
		two.Weight, ratio(opt, two.Weight), two.Cost.Rounds)

	fast, err := repro.FastMWM(g, 0.5, repro.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FastMWM (§B.1):   value=%d  ratio=%.3f  rounds=%d\n",
		fast.Weight, ratio(opt, fast.Weight), fast.Cost.Rounds)

	prop, err := repro.ProposalMCM(g, 0.5, repro.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Proposal (§B.4):  pairs=%d (cardinality only)  rounds=%d\n",
		len(prop.Edges), prop.Cost.Rounds)

	for _, r := range []*repro.MatchingResult{two, fast, prop} {
		if err := repro.CheckMatching(g, r.Edges); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nall assignments are valid matchings; every job/machine matched at most once")
}

func ratio(opt, got int64) float64 {
	if got == 0 {
		return 0
	}
	return float64(opt) / float64(got)
}
