// Scheduling: the classic motivation for distributed MaxIS — a wireless
// network where interfering transmitters cannot broadcast in the same slot.
// Nodes are radios on a grid (plus random long links), node weights are
// queued traffic, and a maximum weight independent set is the best single
// TDMA slot. Each radio decides locally via Algorithm 2; we compare against
// the exact optimum (branch and bound) and the centralized greedy heuristic.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/exact"
)

func main() {
	log.SetFlags(0)

	// 6×8 grid of radios; each interferes with its grid neighbors, plus a
	// few longer interference links.
	g := repro.Grid(6, 8)
	var extra []repro.GraphEdge
	for _, e := range [][2]int{{0, 9}, {5, 12}, {20, 27}, {33, 40}, {17, 30}} {
		if !g.HasEdge(e[0], e[1]) {
			extra = append(extra, repro.GraphEdge{U: e[0], V: e[1]})
		}
	}
	g, err := g.WithEdges(extra...)
	if err != nil {
		log.Fatal(err)
	}
	// Queued traffic per radio.
	repro.AssignUniformNodeWeights(g, 50, 7)

	fmt.Printf("radios=%d interference links=%d ∆=%d\n\n", g.N(), g.M(), g.MaxDegree())

	res, err := repro.MaxIS(g, repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CheckIndependentSet(g, res.InSet); err != nil {
		log.Fatal(err)
	}

	_, opt, err := exact.MaxWeightIndependentSet(g)
	if err != nil {
		log.Fatal(err)
	}
	greedy := g.SetWeight(exact.GreedyWeightIS(g))

	transmitters := 0
	for _, in := range res.InSet {
		if in {
			transmitters++
		}
	}
	fmt.Printf("slot schedule (Algorithm 2): %d radios transmit, traffic served=%d\n", transmitters, res.Weight)
	fmt.Printf("  exact optimum:        %d (ratio %.3f; guarantee was ∆=%d)\n",
		opt, float64(opt)/float64(res.Weight), g.MaxDegree())
	fmt.Printf("  centralized greedy:   %d\n", greedy)
	fmt.Printf("  distributed cost:     %d rounds, %d messages, %d bits\n",
		res.Cost.Rounds, res.Cost.Messages, res.Cost.Bits)

	// The deterministic variant for radios without good randomness.
	det, err := repro.MaxISDeterministic(g, repro.WithSeed(2), repro.WithDeterministicColoring())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeterministic schedule (Algorithm 3 + Linial): traffic served=%d, rounds=%d\n",
		det.Weight, det.Cost.Rounds)
}
