// Batchsweep: drive the batch-sweep subsystem end-to-end through the HTTP
// API — register a named graph in the store (fingerprint-deduplicated),
// fan a parameter grid (algorithms × ε × seeds) out as one batch over the
// job service's worker pool, long-poll it to completion, and render the
// aggregated per-cell statistics. The whole stack runs in-process here;
// point the same client at a running `reprod` server for the remote
// equivalent (see the README's curl cookbook).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)

	// The same wiring cmd/reprod serves: job engine, graph store, batches.
	svc := service.New(service.Config{})
	defer svc.Close()
	st := store.New(store.Config{})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	ts := httptest.NewServer(httpapi.NewHandler(svc, st, batches))
	defer ts.Close()
	c := httpapi.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	// Register one graph by generator spec. Re-registering identical
	// content — under this or any other name — is deduplicated.
	info, err := c.PutGraphGen(ctx, "demo", httpapi.GenRequest{
		Gen: "gnp", N: 96, P: 0.06, Seed: 42, MaxW: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q: n=%d m=%d fingerprint=%s\n", info.Name, info.Nodes, info.Edges, info.Fingerprint)
	alias, err := c.PutGraphGen(ctx, "demo-alias", httpapi.GenRequest{
		Gen: "gnp", N: 96, P: 0.06, Seed: 42, MaxW: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q: dedup=%t shared=%d\n\n", alias.Name, alias.Dedup, alias.Shared)

	// One batch: 2 matching algorithms × 2 ε values × 3 seeds = 12 jobs,
	// expanded server-side and executed on the shared worker pool.
	b, err := c.SubmitBatch(ctx, httpapi.BatchRequest{
		Graphs: []string{"demo"},
		Algos:  []string{"fastmcm", "proposal"},
		Eps:    []float64{0.5, 1},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %s: %d cells\n", b.ID, b.Total)

	// Long-poll until terminal; the server holds the request open.
	fin, err := c.WaitBatch(ctx, b.ID, 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %s: state=%s done=%d failed=%d cache_hits=%d\n\n",
		fin.ID, fin.State, fin.Done, fin.Failed, fin.CacheHits)

	// Each group aggregates one (algo, ε) grid cell over its seeds.
	table := stats.NewTable("algo", "eps", "runs", "matched_mean", "matched_min", "matched_max", "rounds_mean")
	for _, g := range fin.Groups {
		table.AddRow(g.Algo, g.Params.Eps, g.Runs, g.Size.Mean, g.Size.Min, g.Size.Max, g.Rounds.Mean)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A graph pinned by a running batch refuses deletion with 409; after
	// the batch it deletes cleanly.
	for _, name := range []string{"demo", "demo-alias"} {
		if err := c.DeleteGraph(ctx, name); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nstore drained; identical resubmissions would be served from the result cache")
}
