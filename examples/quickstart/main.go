// Quickstart: build a weighted graph, run the paper's distributed
// ∆-approximate MaxIS (Algorithm 2) and its 2-approximate matching
// (Theorem 2.10), and print solution quality and CONGEST costs.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A random communication graph with 64 nodes, expected degree ~6, and
	// node/edge weights in [1, 100].
	g := repro.GNP(64, 0.1, 42)
	repro.AssignUniformNodeWeights(g, 100, 43)
	repro.AssignUniformEdgeWeights(g, 100, 44)
	fmt.Printf("graph: n=%d m=%d ∆=%d\n\n", g.N(), g.M(), g.MaxDegree())

	// ∆-approximate maximum weight independent set, Theorem 2.3.
	is, err := repro.MaxIS(g, repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CheckIndependentSet(g, is.InSet); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxIS (Algorithm 2): weight=%d rounds=%d messages=%d (budget %d bits/msg)\n",
		is.Weight, is.Cost.Rounds, is.Cost.Messages, is.Cost.BitBudget)

	// 2-approximate maximum weight matching: the same machine on the line
	// graph, Theorem 2.10.
	m, err := repro.MWM2(g, repro.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CheckMatching(g, m.Edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MWM2 (Theorem 2.10): |M|=%d weight=%d virtual rounds=%d real rounds=%d\n",
		len(m.Edges), m.Weight, m.Cost.Rounds, m.Cost.RealRounds)

	// The time-optimal (2+ε) matcher, Theorem 3.2.
	fast, err := repro.FastMCM(g, 0.5, repro.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FastMCM (Theorem 3.2, ε=0.5): |M|=%d rounds=%d\n",
		len(fast.Edges), fast.Cost.Rounds)
}
