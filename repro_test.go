package repro

import (
	"bytes"
	"testing"

	"repro/internal/exact"
)

func TestFacadeMaxIS(t *testing.T) {
	g := GNP(24, 0.2, 1)
	AssignUniformNodeWeights(g, 100, 2)
	res, err := MaxIS(g, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIndependentSet(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	_, opt, err := exact.MaxWeightIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight*int64(g.MaxDegree()) < opt {
		t.Fatalf("∆-approximation violated: %d vs OPT %d", res.Weight, opt)
	}
	if res.Cost.Rounds <= 0 || res.Cost.Messages <= 0 {
		t.Fatalf("degenerate cost stats: %+v", res.Cost)
	}
}

func TestFacadeMaxISDeterministic(t *testing.T) {
	g := GNP(20, 0.2, 4)
	AssignUniformNodeWeights(g, 50, 5)
	for _, opt := range [][]Option{
		{WithSeed(6)},
		{WithSeed(6), WithDeterministicColoring()},
	} {
		res, err := MaxISDeterministic(g, opt...)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckIndependentSet(g, res.InSet); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeMatchings(t *testing.T) {
	g := GNP(16, 0.3, 7)
	AssignUniformEdgeWeights(g, 64, 8)
	_, opt, err := exact.MaxWeightMatchingBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	optCard := int64(len(exact.MaxCardinalityMatching(g)))

	cases := []struct {
		name   string
		run    func() (*MatchingResult, error)
		factor float64 // guaranteed approximation factor (with slack)
		weight bool    // compare weights (vs cardinality)
	}{
		{"MWM2", func() (*MatchingResult, error) { return MWM2(g, WithSeed(9)) }, 2, true},
		{"MWM2Det", func() (*MatchingResult, error) { return MWM2Deterministic(g, WithSeed(10)) }, 2, true},
		{"FastMCM", func() (*MatchingResult, error) { return FastMCM(g, 0.5, WithSeed(11)) }, 3, false},
		{"FastMWM", func() (*MatchingResult, error) { return FastMWM(g, 0.5, WithSeed(12)) }, 3, true},
		{"OneEps", func() (*MatchingResult, error) { return OneEpsMCM(g, 0.5, WithSeed(13)) }, 2, false},
		{"OneEpsCongest", func() (*MatchingResult, error) { return OneEpsMCMCongest(g, 0.5, WithSeed(15)) }, 2.5, false},
		{"Proposal", func() (*MatchingResult, error) { return ProposalMCM(g, 0.5, WithSeed(14)) }, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckMatching(g, res.Edges); err != nil {
				t.Fatal(err)
			}
			got := float64(res.Weight)
			want := float64(opt)
			if !tc.weight {
				got = float64(len(res.Edges))
				want = float64(optCard)
			}
			if got*tc.factor < want {
				t.Fatalf("%s: %v × %v < OPT %v", tc.name, got, tc.factor, want)
			}
		})
	}
}

func TestFacadeSequential(t *testing.T) {
	g := Star(6)
	g.SetNodeWeight(0, 10)
	res := SequentialMaxIS(g)
	if err := CheckIndependentSet(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	if res.Weight < 5 {
		t.Fatalf("weight %d too small on weighted star", res.Weight)
	}
}

func TestFacadeNearlyMaximalIS(t *testing.T) {
	g := GNP(50, 0.1, 15)
	res, err := NearlyMaximalIS(g, 2, 0.1, WithSeed(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIndependentSet(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	if float64(res.Uncovered) > 0.3*float64(g.N()) {
		t.Fatalf("%d of %d nodes uncovered", res.Uncovered, g.N())
	}
}

func TestFacadeDeterminismAndParallel(t *testing.T) {
	g := GNP(20, 0.25, 17)
	AssignUniformNodeWeights(g, 32, 18)
	a, err := MaxIS(g, WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxIS(g, WithSeed(19), WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("parallel engine diverged")
		}
	}
}

func TestFacadeCongestEnforced(t *testing.T) {
	g := GNP(32, 0.2, 20)
	res, err := MaxIS(g, WithSeed(21)) // CONGEST is the default
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.BitBudget == 0 {
		t.Fatal("CONGEST budget not reported")
	}
	if res.Cost.MaxMessageBits > res.Cost.BitBudget {
		t.Fatal("budget exceeded without error")
	}
	// An absurdly small budget must fail loudly.
	if _, err := MaxIS(g, WithSeed(21), WithBitsFactor(1)); err == nil {
		t.Fatal("1×log n budget should be violated by weight messages")
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	g := GNP(10, 0.4, 22)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := DecodeGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("round trip changed the graph")
	}
}

func TestFacadeChecks(t *testing.T) {
	g := Path(3)
	if err := CheckIndependentSet(g, []bool{true, true, false}); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := CheckMatching(g, []int{0, 1}); err == nil {
		t.Fatal("overlapping matching accepted")
	}
}
