// Command doclint enforces the repository's documentation floor: every Go
// package under the given roots (default: internal, cmd, examples, and the
// repository root) must carry a package-level doc comment. CI runs it so a
// new package cannot land undocumented; DESIGN.md §2 expects each internal
// package's comment to state its layer and concurrency contract.
//
// Usage:
//
//	doclint [root ...]
//
// Exits non-zero listing every package directory whose non-test files all
// lack a package comment.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doclint: ")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{".", "internal", "cmd", "examples"}
	}
	var missing []string
	for _, root := range roots {
		m, err := Undocumented(root)
		if err != nil {
			log.Fatal(err)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "doclint: package in %s has no package comment\n", dir)
		}
		os.Exit(1)
	}
}

// Undocumented walks root and returns every directory holding a Go package
// (at least one non-test .go file) in which no non-test file carries a
// package doc comment. Root itself is checked non-recursively when it is
// ".", recursively otherwise; vendor, testdata and hidden directories are
// skipped.
func Undocumented(root string) ([]string, error) {
	byDir := make(map[string]bool) // dir -> has a package comment
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			// "." means "this directory only": don't recurse into children
			// (they are covered by their own roots).
			if root == "." && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		has, err := hasPackageComment(path)
		if err != nil {
			return err
		}
		byDir[dir] = byDir[dir] || has
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, has := range byDir {
		if !has {
			missing = append(missing, dir)
		}
	}
	return missing, nil
}

// hasPackageComment reports whether the file carries a non-empty doc
// comment on its package clause.
func hasPackageComment(path string) (bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
	if err != nil {
		return false, fmt.Errorf("parsing %s: %w", path, err)
	}
	return f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "", nil
}
