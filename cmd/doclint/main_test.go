package main

import (
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// TestRepositoryIsFullyDocumented is the enforcement the CI docs-lint step
// duplicates: no package in this repository may lack a package comment.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	repoRoot := filepath.Join("..", "..")
	for _, root := range []string{"internal", "cmd", "examples"} {
		missing, err := Undocumented(filepath.Join(repoRoot, root))
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range missing {
			t.Errorf("package in %s has no package comment", dir)
		}
	}
}

func TestUndocumentedDetection(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good/a.go", "// Package good is documented.\npackage good\n")
	write("good/b.go", "package good\n") // one documented file suffices
	write("bad/a.go", "package bad\n")
	write("bad/a_test.go", "// Package bad has only a test-file comment.\npackage bad\n")
	write("empty/a.go", "//\npackage empty\n") // whitespace-only doc does not count
	write("testdata/skip.go", "package skipped\n")
	write(".hidden/skip.go", "package skipped\n")

	missing, err := Undocumented(dir)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(missing)
	want := []string{filepath.Join(dir, "bad"), filepath.Join(dir, "empty")}
	if !slices.Equal(missing, want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("pkg broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Undocumented(dir); err == nil {
		t.Fatal("broken file parsed without error")
	}
}
