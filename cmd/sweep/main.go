// Command sweep emits CSV parameter sweeps for the experiments in
// DESIGN.md §5: round complexity and approximation ratio as functions of n,
// W, ∆ and ε. The sweep engine lives in internal/sweep and is a thin client
// of the served batch API (internal/httpapi): each experiment uploads its
// graphs to the named graph store (fingerprint-deduplicated), submits one
// batch of explicit cells, long-polls it, and renders the per-cell results —
// so the CLI, the service and the cluster coordinator share one sweep engine
// and identical results.
//
// By default sweep spins the whole stack up in-process (httptest server over
// internal/service + internal/store); point -server at a running reprod
// instance — single-node or a cmd/reprod -workers coordinator — to run the
// same sweep remotely.
//
// Usage:
//
//	sweep -exp E1 [-trials k] [-server http://host:8080] > e1.csv
//
// Experiments: E1 (Alg 2 vs n and W), E2 (Alg 3 vs ∆), E3 (FastMWM vs ∆),
// E4 (OneEpsMCM vs ε), E6 (NMIS coverage vs δ), E9 (proposal vs ∆).
package main

import (
	"context"
	"flag"
	"log"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	names := strings.Join(sweep.Experiments(), ", ")
	exp := flag.String("exp", "E1", "experiment id ("+names+")")
	trials := flag.Int("trials", 3, "trials per configuration")
	server := flag.String("server", "", "reprod base URL (default: run the service in-process)")
	flag.Parse()

	p, err := sweep.Build(*exp, *trials)
	if err != nil {
		log.Fatal(err)
	}

	client, shutdown := newClient(*server)
	defer shutdown()
	if err := sweep.Execute(context.Background(), client, *exp, p); err != nil {
		log.Fatal(err)
	}
	if err := p.CSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// newClient returns a batch-API client: against -server when given,
// otherwise against a full in-process stack.
func newClient(server string) (*httpapi.Client, func()) {
	if server != "" {
		return httpapi.NewClient(server, nil), func() {}
	}
	svc := service.New(service.Config{})
	st := store.New(store.Config{MaxGraphs: 1024})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	ts := httptest.NewServer(httpapi.NewHandler(svc, st, batches))
	return httpapi.NewClient(ts.URL, ts.Client()), func() {
		ts.Close()
		svc.Close()
	}
}
