// Command sweep emits CSV parameter sweeps for the experiments in
// DESIGN.md §5: round complexity and approximation ratio as functions of n,
// W, ∆ and ε. Every algorithm invocation dispatches through the shared
// registry via repro.Run, so the sweeps exercise exactly the code paths the
// service and CLIs serve.
//
// Usage:
//
//	sweep -exp E1 [-trials k] > e1.csv
//
// Experiments: E1 (Alg 2 vs n and W), E2 (Alg 3 vs ∆), E3 (FastMWM vs ∆),
// E4 (OneEpsMCM vs ε), E6 (NMIS coverage vs δ), E9 (proposal vs ∆).
package main

import (
	"flag"
	"log"
	"os"
	"slices"
	"strings"

	"repro"
	"repro/internal/exact"
	"repro/internal/stats"
)

var experiments = map[string]func(trials int) (*stats.Table, error){
	"E1": sweepE1,
	"E2": sweepE2,
	"E3": sweepE3,
	"E4": sweepE4,
	"E6": sweepE6,
	"E9": sweepE9,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	slices.Sort(names)
	exp := flag.String("exp", "E1", "experiment id ("+strings.Join(names, ", ")+")")
	trials := flag.Int("trials", 3, "trials per configuration")
	flag.Parse()

	run, ok := experiments[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q (have: %s)", *exp, strings.Join(names, ", "))
	}
	table, err := run(*trials)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.CSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func sweepE1(trials int) (*stats.Table, error) {
	t := stats.NewTable("n", "W", "trial", "rounds", "weight")
	for _, n := range []int{64, 128, 256, 512} {
		for _, w := range []int64{1, 16, 256, 4096} {
			for k := 0; k < trials; k++ {
				g := repro.GNP(n, 8/float64(n), uint64(n)+uint64(w))
				repro.AssignUniformNodeWeights(g, w, uint64(w)+uint64(k))
				res, err := repro.Run("maxis", g, repro.WithSeed(uint64(k)))
				if err != nil {
					return nil, err
				}
				t.AddRow(n, w, k, res.Cost.Rounds, res.Weight)
			}
		}
	}
	return t, nil
}

func sweepE2(trials int) (*stats.Table, error) {
	t := stats.NewTable("delta", "trial", "rounds", "coloring_rounds_included", "weight")
	for _, d := range []int{2, 4, 8, 16, 32} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(128, d, uint64(d)+uint64(k))
			if err != nil {
				return nil, err
			}
			repro.AssignUniformNodeWeights(g, 512, uint64(d)+7)
			res, err := repro.Run("maxis-det", g, repro.WithSeed(uint64(k)))
			if err != nil {
				return nil, err
			}
			t.AddRow(d, k, res.Cost.Rounds, true, res.Weight)
		}
	}
	return t, nil
}

func sweepE3(trials int) (*stats.Table, error) {
	t := stats.NewTable("delta", "trial", "rounds", "weight", "greedy_lower_bound")
	for _, d := range []int{4, 8, 16, 32} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(128, d, uint64(d)*3+uint64(k))
			if err != nil {
				return nil, err
			}
			repro.AssignUniformEdgeWeights(g, 512, uint64(d)+11)
			res, err := repro.Run("fastmwm", g, repro.WithEps(0.5), repro.WithSeed(uint64(k)))
			if err != nil {
				return nil, err
			}
			t.AddRow(d, k, res.Cost.Rounds, res.Weight, g.MatchingWeight(exact.GreedyMatching(g)))
		}
	}
	return t, nil
}

func sweepE4(trials int) (*stats.Table, error) {
	t := stats.NewTable("eps", "trial", "rounds", "matched", "opt")
	g := repro.GNP(96, 0.06, 77)
	opt := len(exact.MaxCardinalityMatching(g))
	for _, eps := range []float64{1, 0.5, 0.34, 0.25} {
		for k := 0; k < trials; k++ {
			res, err := repro.Run("oneeps", g, repro.WithEps(eps), repro.WithSeed(uint64(k)))
			if err != nil {
				return nil, err
			}
			t.AddRow(eps, k, res.Cost.Rounds, res.Size, opt)
		}
	}
	return t, nil
}

func sweepE6(trials int) (*stats.Table, error) {
	t := stats.NewTable("delta_target", "trial", "rounds", "uncovered_fraction")
	g := repro.GNP(256, 0.03, 9)
	for _, delta := range []float64{0.5, 0.2, 0.1, 0.05} {
		for k := 0; k < trials; k++ {
			res, err := repro.Run("nmis", g, repro.WithK(2), repro.WithDelta(delta), repro.WithSeed(uint64(k)))
			if err != nil {
				return nil, err
			}
			t.AddRow(delta, k, res.Cost.Rounds, float64(res.Uncovered)/float64(g.N()))
		}
	}
	return t, nil
}

func sweepE9(trials int) (*stats.Table, error) {
	t := stats.NewTable("delta", "trial", "rounds", "matched", "opt")
	for _, d := range []int{4, 16, 64} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(256, d, uint64(d)+uint64(k)+17)
			if err != nil {
				return nil, err
			}
			res, err := repro.Run("proposal", g, repro.WithEps(0.5), repro.WithSeed(uint64(k)))
			if err != nil {
				return nil, err
			}
			t.AddRow(d, k, res.Cost.Rounds, res.Size, len(exact.MaxCardinalityMatching(g)))
		}
	}
	return t, nil
}
