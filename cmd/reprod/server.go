package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/service"
)

// maxBodyBytes bounds a submission body (inline graphs included).
const maxBodyBytes = 64 << 20

// submitRequest is the POST /v1/jobs body. Exactly one of Graph (the
// graph.Encode text format) and Gen (a generator spec) must be set.
type submitRequest struct {
	Algo      string         `json:"algo"`
	Graph     string         `json:"graph,omitempty"`
	Gen       *genRequest    `json:"gen,omitempty"`
	Params    *paramsRequest `json:"params,omitempty"`
	TimeoutMs int64          `json:"timeout_ms,omitempty"`
}

// genRequest mirrors registry.GenParams with the generator name inline:
// {"gen":"gnp","n":64,"p":0.1,"seed":1}.
type genRequest struct {
	Gen   string  `json:"gen"`
	N     int     `json:"n,omitempty"`
	N2    int     `json:"n2,omitempty"`
	D     int     `json:"d,omitempty"`
	P     float64 `json:"p,omitempty"`
	Rows  int     `json:"rows,omitempty"`
	Cols  int     `json:"cols,omitempty"`
	Spine int     `json:"spine,omitempty"`
	Legs  int     `json:"legs,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	MaxW  int64   `json:"maxw,omitempty"`
}

type paramsRequest struct {
	Eps         float64 `json:"eps,omitempty"`
	K           int     `json:"k,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	MIS         string  `json:"mis,omitempty"`
	Model       string  `json:"model,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	DetColoring bool    `json:"det_coloring,omitempty"`
}

type jobResponse struct {
	ID          string          `json:"id"`
	Algo        string          `json:"algo"`
	State       string          `json:"state"`
	CacheHit    bool            `json:"cache_hit"`
	Error       string          `json:"error,omitempty"`
	Result      *resultResponse `json:"result,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
}

type resultResponse struct {
	Kind      string        `json:"kind"`
	Size      int           `json:"size"`
	Weight    int64         `json:"weight"`
	Uncovered int           `json:"uncovered,omitempty"`
	InSet     []bool        `json:"in_set,omitempty"`
	Edges     []int         `json:"edges,omitempty"`
	Cost      registry.Cost `json:"cost"`
}

// newHandler wires the HTTP API around a job service. It is a plain
// http.Handler so the e2e tests can drive it through httptest.
func newHandler(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	mux.HandleFunc("GET /v1/algorithms", handleAlgorithms)
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(svc, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := svc.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, toJobResponse(v))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := svc.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, service.ErrNotFound):
			writeErr(w, http.StatusNotFound, "no such job")
		case errors.Is(err, service.ErrFinished):
			writeErr(w, http.StatusConflict, "job already finished")
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, toJobResponse(v))
		}
	})
	return mux
}

func handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	type algoJSON struct {
		Name    string   `json:"name"`
		Kind    string   `json:"kind"`
		Summary string   `json:"summary"`
		Params  []string `json:"params"`
	}
	type genJSON struct {
		Name    string   `json:"name"`
		Summary string   `json:"summary"`
		Params  []string `json:"params"`
	}
	var out struct {
		Algorithms []algoJSON `json:"algorithms"`
		Generators []genJSON  `json:"generators"`
	}
	for _, s := range registry.All() {
		out.Algorithms = append(out.Algorithms, algoJSON{s.Name, s.Kind.String(), s.Summary, s.Params})
	}
	for _, s := range registry.Generators() {
		out.Generators = append(out.Generators, genJSON{s.Name, s.Summary, s.Params})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleSubmit(svc *service.Service, w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Algo == "" {
		writeErr(w, http.StatusBadRequest, "missing algo (see GET /v1/algorithms)")
		return
	}

	g, err := buildGraph(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}

	params := registry.Params{}
	if p := req.Params; p != nil {
		mdl, err := registry.ParseModel(p.Model)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		params = registry.Params{
			Eps: p.Eps, K: p.K, Delta: p.Delta, MIS: p.MIS,
			Model: mdl, Seed: p.Seed, DeterministicColoring: p.DetColoring,
		}
	}

	v, err := svc.Submit(service.Request{
		Algo:    req.Algo,
		Graph:   g,
		Params:  params,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
	})
	switch {
	case errors.Is(err, service.ErrQueueFull):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, service.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, toJobResponse(v))
	}
}

func buildGraph(req *submitRequest) (*graph.Graph, error) {
	switch {
	case req.Graph != "" && req.Gen != nil:
		return nil, errors.New("set exactly one of graph and gen, not both")
	case req.Graph != "":
		if err := checkGraphHeader(req.Graph); err != nil {
			return nil, err
		}
		g, err := graph.Decode(strings.NewReader(req.Graph))
		if err != nil {
			return nil, fmt.Errorf("malformed graph: %v", err)
		}
		return g, nil
	case req.Gen != nil:
		spec, ok := registry.GetGenerator(req.Gen.Gen)
		if !ok {
			return nil, fmt.Errorf("unknown generator %q (have: %s)",
				req.Gen.Gen, strings.Join(registry.GeneratorNames(), ", "))
		}
		return spec.Build(registry.GenParams{
			N: req.Gen.N, N2: req.Gen.N2, D: req.Gen.D, P: req.Gen.P,
			Rows: req.Gen.Rows, Cols: req.Gen.Cols,
			Spine: req.Gen.Spine, Legs: req.Gen.Legs,
			Seed: req.Gen.Seed, MaxW: req.Gen.MaxW,
		})
	default:
		return nil, errors.New("missing graph: set graph (text format) or gen (generator spec)")
	}
}

// checkGraphHeader bounds the declared sizes of an inline graph before
// graph.Decode allocates for them: the n/m header is attacker-controlled,
// and Decode trusts it. Lines that don't parse are left for Decode to
// reject with its own error.
func checkGraphHeader(text string) error {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var n, m int
		if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
			return nil
		}
		if n > registry.MaxGraphNodes {
			return fmt.Errorf("graph declares %d nodes, cap %d", n, registry.MaxGraphNodes)
		}
		if m > registry.MaxGraphEdges {
			return fmt.Errorf("graph declares %d edges, cap %d", m, registry.MaxGraphEdges)
		}
		return nil
	}
	return nil
}

func toJobResponse(v service.JobView) jobResponse {
	out := jobResponse{
		ID:          v.ID,
		Algo:        v.Algo,
		State:       string(v.State),
		CacheHit:    v.CacheHit,
		Error:       v.Error,
		SubmittedAt: v.SubmittedAt,
	}
	if !v.StartedAt.IsZero() {
		t := v.StartedAt
		out.StartedAt = &t
	}
	if !v.FinishedAt.IsZero() {
		t := v.FinishedAt
		out.FinishedAt = &t
	}
	if v.Result != nil {
		out.Result = &resultResponse{
			Kind:      v.Result.Kind.String(),
			Size:      v.Result.Size(),
			Weight:    v.Result.Weight,
			Uncovered: v.Result.Uncovered,
			InSet:     v.Result.InSet,
			Edges:     v.Result.Edges,
			Cost:      v.Result.Cost,
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("reprod: encoding response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
