// Command reprod serves the repository's distributed-approximation
// algorithms as a long-running HTTP JSON service (the internal/httpapi
// surface) backed by the internal/service job and batch engines and the
// internal/store named graph registry: a bounded worker pool, an in-memory
// job store, an LRU result cache keyed by (graph fingerprint, algorithm,
// params), fingerprint-deduplicated named graphs, and batch sweeps that
// expand a parameter grid over stored graphs.
//
// Endpoints (see internal/httpapi for the full wire format):
//
//	POST   /v1/jobs            submit a job (inline graph, stored graph, or generator spec)
//	GET    /v1/jobs/{id}       poll a job
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	PUT    /v1/graphs/{name}   register a named graph (upload or generator spec)
//	GET    /v1/graphs[/{name}] list or inspect named graphs
//	DELETE /v1/graphs/{name}   delete a named graph (409 while a batch pins it)
//	POST   /v1/batches         submit a batch (stored graphs × parameter grid)
//	GET    /v1/batches/{id}    poll a batch; ?wait=5s long-polls until terminal
//	DELETE /v1/batches/{id}    cancel a batch (fans out to member jobs)
//	GET    /v1/algorithms      list registered algorithms and generators
//	GET    /healthz            liveness
//	GET    /metrics            service + batch counters and latency percentiles
//	                           (JSON by default; Prometheus text exposition with
//	                           Accept: text/plain)
//
// Logs are structured (log/slog); -log selects text or json output. In
// coordinator mode the dispatch path emits span events (group_dispatch,
// group_retry, group_replace, group_straggler, group_hedge, worker_down,
// worker_revived — plus the cell_* equivalents under -percell) tagged with
// batch and cell trace IDs. -pprof mounts net/http/pprof under /debug/pprof/
// in both modes.
//
// Example:
//
//	reprod -addr :8080 &
//	curl -s -X PUT localhost:8080/v1/graphs/demo -d '{"gen":{"gen":"gnp","n":64,"p":0.1,"seed":1,"maxw":64}}'
//	curl -s localhost:8080/v1/batches -d '{"graphs":["demo"],"algos":["mwm2"],"seeds":[1,2,3]}'
//	curl -s 'localhost:8080/v1/batches/b000001?wait=10s'
//
// Cluster-coordinator mode: -workers http://host1:8080,http://host2:8080
// serves the same /v1/graphs and /v1/batches wire format but shards batch
// cells across the named reprod workers (internal/cluster): graphs are
// consistent-hashed onto workers by fingerprint and uploaded once each in
// the compact binary codec, same-parameter cells ride together as job
// groups of -groupsize seeds (one lookup, one submit, one poll stream per
// group — see -percell for the legacy one-job-per-cell path), groups retry
// on worker failure, -hedge speculatively re-dispatches groups that run past
// -straggler (first result wins, duplicates discarded), and GET /v1/cluster
// reports fleet health and placement. Single-job endpoints are not served in
// coordinator mode.
//
// Durability: -waldir journals graph bindings and batch progress to
// checksummed write-ahead logs (with -snapshot-every compaction) so that a
// restarted server recovers its named graphs and resumes incomplete batches
// under their original IDs — finished cells are restored from the log, only
// unfinished ones re-execute. See DESIGN.md §8 and the README recovery
// cookbook. Without -waldir all state is in-memory, as before.
//
// Multi-tenant mode: -keys names a file of per-tenant API keys (one
// "<tenant> <sha256-of-key>" line each, with optional weight=/rate=/burst=/
// cells=/queue=/waiters= knobs — see internal/tenant). With -keys every
// request must authenticate (X-API-Key or Authorization: Bearer), mutating
// requests spend the tenant's token bucket, graphs and batches are scoped
// per tenant, and the job queue becomes a weighted fair queue so one
// tenant's backlog cannot starve another's. SIGHUP re-reads the key file
// without a restart (on parse errors the previous keys stay in effect).
// Coordinator deployments pass -worker-key to authenticate against workers
// that run with -keys themselves.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops admitting
// new jobs (submissions 503 with code "draining"), waits up to -drain for
// in-flight work — single-node mode finishes running cells and journals
// them to the WAL, leaving the queued remainder for the restart to resume;
// coordinator mode lets dispatched groups finish on their workers — then
// stops accepting connections and flushes the ledger. With -waldir the
// clean shutdown also writes a final snapshot, so the next start replays a
// minimal log tail; a SIGKILL (or crash) instead replays the journal, which
// recovers everything that was acknowledged before the crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tenant"
)

// newLogger builds the structured logger behind -log: "text" and "json"
// select the slog handler; anything else is a flag error.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("bad -log %q: want text or json", format)
	}
}

// mountPprof wraps the mode handler (single-node or coordinator — the wrap
// happens after the mode branch, so both get it) with net/http/pprof under
// /debug/pprof/. Profiling stays off the default surface: the handlers expose
// stack traces and timings, so they are gated behind an explicit flag rather
// than mounted unconditionally (run `go tool pprof
// http://host/debug/pprof/profile` against a -pprof server to profile the
// service in situ).
func mountPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprod: ")
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "executor goroutines per node (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue capacity")
	cache := flag.Int("cache", 128, "LRU result-cache entries")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job timeout")
	maxGraphs := flag.Int("maxgraphs", 256, "named graph store capacity")
	maxBody := flag.Int64("maxbody", httpapi.DefaultMaxBodyBytes, "request body size cap in bytes (raise for large graph uploads)")
	spillDir := flag.String("spilldir", "", "directory for RGD1 graph spill: evicted store entries move to disk and revive via mmap (defaults to <waldir>/spill when -waldir is set)")
	walDir := flag.String("waldir", "", "directory for WAL durability: graph registrations and batch state are journaled there and recovered on restart (empty = in-memory only)")
	snapshotEvery := flag.Int("snapshot-every", 512, "WAL records between snapshot compactions (0 = snapshot only on clean shutdown)")
	load := flag.String("load", "", "comma-separated graph files to preload into the store (.el/.txt edge list, .mtx Matrix Market, .rgd1 disk CSR, .rgb1 binary); each is named after its base filename")
	maxCells := flag.Int("maxcells", 4096, "cell cap per batch")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	fleet := flag.String("workers", "", "comma-separated reprod worker base URLs; enables cluster-coordinator mode")
	window := flag.Int("window", 4, "coordinator mode: in-flight cells per worker")
	probe := flag.Duration("probe", 5*time.Second, "coordinator mode: worker health-probe interval (0 disables)")
	poll := flag.Duration("poll", 20*time.Millisecond, "coordinator mode: job poll interval against workers")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	straggler := flag.Duration("straggler", 0, "coordinator mode: straggler threshold — log a span event once a dispatched group runs this long, and hedge it under -hedge (0 = adaptive 3×p99)")
	hedge := flag.Bool("hedge", false, "coordinator mode: speculatively re-dispatch straggling groups to a second worker; first result wins")
	groupSize := flag.Int("groupsize", 16, "coordinator mode: max seeds per dispatched job group")
	perCell := flag.Bool("percell", false, "coordinator mode: dispatch one job per cell instead of grouped job groups (benchmark baseline)")
	keysFile := flag.String("keys", "", "per-tenant API key file; enables multi-tenant mode (auth, rate limits, fair-share admission); SIGHUP reloads it")
	drainFor := flag.Duration("drain", 30*time.Second, "graceful-drain bound on SIGINT/SIGTERM: how long to wait for in-flight work before forcing shutdown")
	workerKey := flag.String("worker-key", "", "coordinator mode: API key sent to workers running with -keys")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(logger)

	// Surface flags that silently do nothing in the selected mode: a knob an
	// operator set explicitly must either take effect or be called out.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	inert := map[bool][]string{
		true:  {"pool", "queue", "cache", "timeout", "load"},                             // single-node engine knobs
		false: {"window", "probe", "poll", "straggler", "hedge", "groupsize", "percell"}, // coordinator knobs
	}
	for _, name := range inert[*fleet != ""] {
		if set[name] {
			log.Printf("warning: -%s has no effect in %s mode", name,
				map[bool]string{true: "coordinator", false: "single-node"}[*fleet != ""])
		}
	}

	// Multi-tenant front door: load the key file once at startup and swap in
	// fresh tables on SIGHUP. A nil keyring leaves the API open (single-user
	// mode) with the exact pre-tenant wire format.
	var keyring *tenant.Keyring
	if *keysFile != "" {
		kr, err := tenant.Load(*keysFile)
		if err != nil {
			log.Fatalf("-keys %s: %v", *keysFile, err)
		}
		keyring = kr
		log.Printf("multi-tenant mode: %d tenant keys from %s", kr.Len(), *keysFile)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := kr.Reload(); err != nil {
					log.Printf("SIGHUP key reload failed (previous keys kept): %v", err)
				} else {
					log.Printf("SIGHUP: reloaded %d tenant keys from %s", kr.Len(), *keysFile)
				}
			}
		}()
	}

	var handler http.Handler
	var shutdown func()
	// drain is the mode-specific graceful phase run on SIGINT/SIGTERM before
	// the listener closes: stop admitting, let in-flight work settle (bounded
	// by -drain), and report whether everything finished in time.
	var drain func(time.Duration) bool
	if *fleet != "" {
		storeWAL := ""
		if *walDir != "" {
			storeWAL = filepath.Join(*walDir, "store")
		}
		coord, err := cluster.New(cluster.Config{
			Workers:        strings.Split(*fleet, ","),
			Window:         *window,
			ProbeInterval:  *probe,
			PollInterval:   *poll,
			MaxGraphs:      *maxGraphs,
			WALDir:         storeWAL,
			SpillDir:       *spillDir,
			SnapshotEvery:  *snapshotEvery,
			MaxCells:       *maxCells,
			Logger:         logger,
			StragglerAfter: *straggler,
			Hedge:          *hedge,
			GroupSize:      *groupSize,
			PerCell:        *perCell,
			WorkerAPIKey:   *workerKey,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("coordinator mode over %d workers", len(strings.Split(*fleet, ",")))
		handler = httpapi.NewClusterHandler(coord, httpapi.WithMaxBodyBytes(*maxBody), httpapi.WithKeyring(keyring))
		shutdown = coord.Close
		drain = coord.Drain
	} else {
		cfg := service.Config{
			Workers:        *pool,
			QueueSize:      *queue,
			CacheSize:      *cache,
			DefaultTimeout: *timeout,
		}
		if keyring != nil {
			kr := keyring
			cfg.TenantLimits = func(id string) service.TenantLimits {
				t, ok := kr.ByID(id)
				if !ok {
					return service.TenantLimits{}
				}
				return service.TenantLimits{Weight: t.Weight, MaxRunning: t.MaxCells, QueueSize: t.QueueSize}
			}
		}
		svc := service.New(cfg)
		storeWAL, batchWAL, spill := "", "", *spillDir
		if *walDir != "" {
			storeWAL = filepath.Join(*walDir, "store")
			batchWAL = filepath.Join(*walDir, "batches")
			if spill == "" {
				spill = filepath.Join(*walDir, "spill")
			}
		}
		st, err := store.Open(store.Config{
			MaxGraphs:     *maxGraphs,
			SpillDir:      spill,
			WALDir:        storeWAL,
			SnapshotEvery: *snapshotEvery,
			Logger:        logger,
		})
		if err != nil {
			log.Fatal(err)
		}
		batches, err := service.OpenBatches(svc, st, service.BatchConfig{
			MaxCells:      *maxCells,
			WALDir:        batchWAL,
			SnapshotEvery: *snapshotEvery,
			Logger:        logger,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *load != "" {
			for _, path := range strings.Split(*load, ",") {
				name, info, err := loadGraphFile(st, strings.TrimSpace(path))
				if err != nil {
					log.Fatalf("-load %s: %v", path, err)
				}
				log.Printf("loaded %s as %q: %d nodes, %d edges", path, name, info.Nodes, info.Edges)
			}
		}
		handler = httpapi.NewHandler(svc, st, batches, httpapi.WithMaxBodyBytes(*maxBody), httpapi.WithKeyring(keyring))
		drain = svc.Drain
		// Drain order matters: stop the job engine first (queued jobs finish
		// and their terminal notifications reach the ledger), then flush the
		// ledger and write its final snapshot, then the store's.
		shutdown = func() {
			svc.Close()
			if err := batches.Close(); err != nil {
				log.Printf("batch ledger close: %v", err)
			}
			if err := st.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}
	}
	if *pprofOn {
		handler = mountPprof(handler)
		log.Print("pprof handlers enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Restore default signal handling immediately: draining the job queue
	// below can take a while, and a second SIGINT/SIGTERM should kill the
	// process rather than be swallowed.
	stop()

	// Drain before closing the listener: new submissions already 503 with
	// code "draining", but clients can keep polling and streaming results
	// for work that is still settling. Only then stop serving and flush.
	log.Printf("shutting down: draining in-flight work (up to %s)", *drainFor)
	if drain(*drainFor) {
		log.Print("drain complete")
	} else {
		log.Printf("drain timed out after %s; unfinished work resumes from the WAL on restart", *drainFor)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	shutdown()
	log.Print("bye")
}
