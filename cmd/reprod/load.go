package main

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/graph"
	"repro/internal/store"
)

// loadGraphFile ingests one local graph file into the store under a name
// derived from its base filename ("web-graph.el" registers as "web-graph").
// The format is picked by extension — see graph.ReadFile for the table.
//
// Local files are operator-supplied, so text formats are read without the
// node/edge caps the HTTP upload path enforces — only the int32 CSR range
// bounds apply. Self-loops and duplicate edges are dropped rather than
// rejected, matching the upload path's tolerance for SNAP-style dumps.
func loadGraphFile(st *store.Store, path string) (string, store.Info, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if name == "" {
		return "", store.Info{}, fmt.Errorf("cannot derive a graph name from %q", path)
	}
	g, err := graph.ReadFile(path, graph.ReadOptions{SkipSelfLoops: true, DedupEdges: true})
	if err != nil {
		return "", store.Info{}, err
	}
	info, _, err := st.Put(name, store.Source{Graph: g})
	return name, info, err
}
