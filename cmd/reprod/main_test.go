package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// TestPprofMountsInBothModes is a regression test for a claim that keeps
// resurfacing: that -pprof is dead in coordinator mode. It is not — main()
// wraps the handler with mountPprof *after* the mode branch, so both the
// single-node and the coordinator surface serve /debug/pprof/. This test
// builds each mode's handler exactly as main() does and pins that the pprof
// index answers 200 while the mode's own routes keep working.
func TestPprofMountsInBothModes(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueSize: 8})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{})
	single := httpapi.NewHandler(svc, st, service.NewBatches(svc, st, service.BatchConfig{}))

	// Workers start healthy and ProbeInterval 0 means the coordinator never
	// dials them, so placeholder URLs suffice for a routing test.
	coord, err := cluster.New(cluster.Config{Workers: []string{"http://w1.invalid:1"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	modes := map[string]http.Handler{
		"single-node": single,
		"coordinator": httpapi.NewClusterHandler(coord),
	}
	for name, h := range modes {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(mountPprof(h))
			defer ts.Close()

			resp, err := http.Get(ts.URL + "/debug/pprof/")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/debug/pprof/ in %s mode: status %d", name, resp.StatusCode)
			}

			resp, err = http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/metrics in %s mode behind pprof mux: status %d", name, resp.StatusCode)
			}
		})
	}
}

// TestNewLogger pins the -log flag contract: text and json select handlers,
// anything else is a flag error.
func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Fatalf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Fatal("newLogger accepted an unknown format")
	}
}
