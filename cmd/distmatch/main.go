// Command distmatch runs any of the repository's distributed approximation
// algorithms on a graph read from a file (or generated on the fly) and prints
// the solution quality and communication costs.
//
// Usage:
//
//	distmatch -algo maxis   -in graph.txt
//	distmatch -algo mwm2    -gen gnp -n 64 -p 0.1 -maxw 100
//	distmatch -algo fastmcm -gen regular -n 128 -d 8 -eps 0.5
//
// Algorithms: maxis, maxis-det, seq-maxis, mwm2, mwm2-det, fastmcm, fastmwm,
// oneeps, proposal, nmis.
//
// The graph file format is the one produced by repro.WriteGraph:
//
//	n m
//	w(0) … w(n-1)
//	u v w     (per edge)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distmatch: ")
	algo := flag.String("algo", "maxis", "algorithm to run")
	in := flag.String("in", "", "input graph file (omit to generate)")
	gen := flag.String("gen", "gnp", "generator when -in is absent: gnp, regular, star, path, cycle, complete")
	n := flag.Int("n", 64, "nodes for generated graphs")
	p := flag.Float64("p", 0.1, "edge probability for gnp")
	d := flag.Int("d", 4, "degree for regular graphs")
	maxw := flag.Int64("maxw", 64, "max random node/edge weight (1 = unweighted)")
	eps := flag.Float64("eps", 0.5, "ε for the (1+ε)/(2+ε) algorithms")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	g, err := loadGraph(*in, *gen, *n, *p, *d, *maxw, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d ∆=%d W=%d\n", g.N(), g.M(), g.MaxDegree(), g.MaxNodeWeight())

	switch *algo {
	case "maxis":
		report(repro.MaxIS(g, repro.WithSeed(*seed)))
	case "maxis-det":
		report(repro.MaxISDeterministic(g, repro.WithSeed(*seed)))
	case "seq-maxis":
		res := repro.SequentialMaxIS(g)
		fmt.Printf("weight=%d (sequential; no round metrics)\n", res.Weight)
	case "mwm2":
		reportM(repro.MWM2(g, repro.WithSeed(*seed)))
	case "mwm2-det":
		reportM(repro.MWM2Deterministic(g, repro.WithSeed(*seed)))
	case "fastmcm":
		reportM(repro.FastMCM(g, *eps, repro.WithSeed(*seed)))
	case "fastmwm":
		reportM(repro.FastMWM(g, *eps, repro.WithSeed(*seed)))
	case "oneeps":
		reportM(repro.OneEpsMCM(g, *eps, repro.WithSeed(*seed)))
	case "proposal":
		reportM(repro.ProposalMCM(g, *eps, repro.WithSeed(*seed)))
	case "nmis":
		res, err := repro.NearlyMaximalIS(g, 2, 0.1, repro.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		size := 0
		for _, in := range res.InSet {
			if in {
				size++
			}
		}
		fmt.Printf("set size=%d uncovered=%d rounds=%d\n", size, res.Uncovered, res.Cost.Rounds)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
}

func loadGraph(in, gen string, n int, p float64, d int, maxw int64, seed uint64) (*repro.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return repro.DecodeGraph(f)
	}
	var g *repro.Graph
	var err error
	switch gen {
	case "gnp":
		g = repro.GNP(n, p, seed)
	case "regular":
		g, err = repro.RandomRegular(n, d, seed)
	case "star":
		g = repro.Star(n)
	case "path":
		g = repro.Path(n)
	case "cycle":
		g = repro.Cycle(n)
	case "complete":
		g = repro.Complete(n)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if err != nil {
		return nil, err
	}
	if maxw > 1 {
		repro.AssignUniformNodeWeights(g, maxw, seed+1)
		repro.AssignUniformEdgeWeights(g, maxw, seed+2)
	}
	return g, nil
}

func report(res *repro.ISResult, err error) {
	if err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, in := range res.InSet {
		if in {
			size++
		}
	}
	fmt.Printf("independent set: size=%d weight=%d\n", size, res.Weight)
	printCost(res.Cost)
}

func reportM(res *repro.MatchingResult, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching: size=%d weight=%d\n", len(res.Edges), res.Weight)
	printCost(res.Cost)
}

func printCost(c repro.CostStats) {
	fmt.Printf("rounds=%d real_rounds=%d messages=%d bits=%d max_msg_bits=%d budget=%d\n",
		c.Rounds, c.RealRounds, c.Messages, c.Bits, c.MaxMessageBits, c.BitBudget)
}
