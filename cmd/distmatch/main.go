// Command distmatch runs any of the repository's distributed approximation
// algorithms on a graph read from a file (or generated on the fly) and prints
// the solution quality and communication costs. Algorithm and generator
// dispatch both go through internal/registry, so the accepted names are
// exactly those of cmd/sweep, cmd/reprod and repro.Run.
//
// Usage:
//
//	distmatch -algo maxis   -in graph.txt
//	distmatch -algo mwm2    -gen gnp -n 64 -p 0.1 -maxw 100
//	distmatch -algo fastmcm -gen regular -n 128 -d 8 -eps 0.5
//	distmatch -algo nmis    -gen caterpillar -spine 16 -legs 8 -delta 0.05
//	distmatch -list
//
// The graph file format is the one produced by repro.WriteGraph:
//
//	n m
//	w(0) … w(n-1)
//	u v w     (per edge)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/registry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distmatch: ")
	algo := flag.String("algo", "maxis", "algorithm: "+strings.Join(registry.Names(), ", "))
	list := flag.Bool("list", false, "list algorithms and generators, then exit")
	in := flag.String("in", "", "input graph file (omit to generate)")
	gen := flag.String("gen", "gnp", "generator when -in is absent: "+strings.Join(registry.GeneratorNames(), ", "))
	n := flag.Int("n", 64, "nodes for generated graphs (left side for bipartite)")
	n2 := flag.Int("n2", 32, "right-side nodes for bipartite graphs")
	p := flag.Float64("p", 0.1, "edge probability for gnp/bipartite")
	d := flag.Int("d", 4, "degree for regular graphs")
	rows := flag.Int("rows", 8, "rows for grid graphs")
	cols := flag.Int("cols", 8, "cols for grid graphs")
	spine := flag.Int("spine", 16, "spine length for caterpillar graphs")
	legs := flag.Int("legs", 4, "legs per spine node for caterpillar graphs")
	maxw := flag.Int64("maxw", 64, "max random node/edge weight (1 = unweighted)")
	eps := flag.Float64("eps", 0.5, "ε for the (1+ε)/(2+ε) algorithms")
	k := flag.Int("k", 2, "probability factor K of the §3/§B algorithms")
	delta := flag.Float64("delta", 0.1, "failure target δ for nmis")
	misName := flag.String("mis", "luby", "MIS black box: luby, ghaffari, greedyid")
	model := flag.String("model", "congest", "communication model: congest or local")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	if *list {
		printListing()
		return
	}

	spec, ok := registry.Get(*algo)
	if !ok {
		log.Fatalf("unknown algorithm %q (have: %s)", *algo, strings.Join(registry.Names(), ", "))
	}
	// A flag value is always explicit: reject invalid ones here rather than
	// letting the registry's zero-means-default normalization absorb them.
	// The flag defaults are all valid, so an invalid value was user-typed.
	for _, err := range []error{registry.ValidEps(*eps), registry.ValidK(*k), registry.ValidDelta(*delta)} {
		if err != nil {
			log.Fatal(err)
		}
	}
	mdl, err := registry.ParseModel(*model)
	if err != nil {
		log.Fatal(err)
	}

	g, err := loadGraph(*in, *gen, registry.GenParams{
		N: *n, N2: *n2, D: *d, P: *p,
		Rows: *rows, Cols: *cols, Spine: *spine, Legs: *legs,
		Seed: *seed, MaxW: *maxw,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d ∆=%d W=%d\n", g.N(), g.M(), g.MaxDegree(), g.MaxNodeWeight())

	res, err := spec.Run(g, registry.Params{
		Eps: *eps, K: *k, Delta: *delta,
		MIS: *misName, Model: mdl, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	switch res.Kind {
	case registry.IS:
		fmt.Printf("independent set: size=%d weight=%d\n", res.Size(), res.Weight)
	case registry.Matching:
		fmt.Printf("matching: size=%d weight=%d\n", res.Size(), res.Weight)
	case registry.NMIS:
		fmt.Printf("nearly-maximal set: size=%d weight=%d uncovered=%d\n", res.Size(), res.Weight, res.Uncovered)
	}
	c := res.Cost
	fmt.Printf("rounds=%d real_rounds=%d messages=%d bits=%d max_msg_bits=%d budget=%d\n",
		c.Rounds, c.RealRounds, c.Messages, c.Bits, c.MaxMessageBits, c.BitBudget)
}

func loadGraph(in, gen string, p registry.GenParams) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Decode(f)
	}
	gspec, ok := registry.GetGenerator(gen)
	if !ok {
		return nil, fmt.Errorf("unknown generator %q (have: %s)", gen, strings.Join(registry.GeneratorNames(), ", "))
	}
	return gspec.Build(p)
}

func printListing() {
	fmt.Println("algorithms:")
	for _, s := range registry.All() {
		fmt.Printf("  %-15s [%s] %s\n", s.Name, s.Kind, s.Summary)
	}
	fmt.Println("generators:")
	for _, s := range registry.Generators() {
		fmt.Printf("  %-15s %s (params: %s)\n", s.Name, s.Summary, strings.Join(s.Params, ", "))
	}
}
