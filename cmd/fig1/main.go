// Command fig1 reproduces Figure 1 of the paper: the forward/backward
// traversal that counts shortest augmenting paths in a bipartite graph
// (Claims B.5 and B.6). It builds a small bipartite instance with a maximal
// matching, runs the two traversals for length-3 augmenting paths, and
// renders the per-node layers, forward counts (black numbers) and
// through-counts (purple numbers) as text.
//
// Like the other cmds, fig1 consumes only the repro facade; the traversal,
// enumeration check and matching baseline are facade functions backed by the
// same internals the registry algorithms use.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig1: ")
	random := flag.Bool("random", false, "use a random bipartite instance instead of the built-in Figure 1 analogue")
	nl := flag.Int("left", 8, "left-side nodes (with -random)")
	nr := flag.Int("right", 8, "right-side nodes (with -random)")
	p := flag.Float64("p", 0.35, "edge probability (with -random)")
	seed := flag.Uint64("seed", 7, "graph seed (with -random)")
	length := flag.Int("len", 3, "augmenting path length (odd)")
	flag.Parse()

	var g *repro.Graph
	var side []int
	var matching []int
	if *random {
		g, side = repro.RandomBipartite(*nl, *nr, *p, *seed)
		matching = repro.GreedyMatching(g)
	} else {
		g, side, matching = figure1Instance()
	}
	mate := repro.MateFromMatching(g, matching)
	active := make([]bool, g.N())
	for i := range active {
		active[i] = true
	}
	pc, err := repro.CountAugmentingPaths(g, side, mate, *length, active)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bipartite graph: %d nodes, %d edges; matching of size %d\n",
		g.N(), g.M(), len(matching))
	fmt.Printf("augmenting-path length d = %d; traversal cost = %d CONGEST rounds (2d)\n\n", *length, pc.Rounds)

	fmt.Println("node  side  mate  layer  forward  suffix  through")
	for v := 0; v < g.N(); v++ {
		sideName := "A"
		if side[v] == 1 {
			sideName = "B"
		}
		mateStr := "-"
		if mate[v] != -1 {
			mateStr = fmt.Sprintf("%d", mate[v])
		}
		fmt.Printf("%4d  %4s  %4s  %5d  %7d  %6d  %7d\n",
			v, sideName, mateStr, pc.Layer[v], pc.Forward[v], pc.Suffix[v], pc.Through[v])
	}

	var total int64
	for v := 0; v < g.N(); v++ {
		if side[v] == 1 && mate[v] == -1 && pc.Layer[v] == *length {
			total += pc.Forward[v]
		}
	}
	fmt.Printf("\ntotal length-%d augmenting paths (sum of forward counts at unmatched B): %d\n", *length, total)

	// Verify Claim B.5 against explicit enumeration, as the test suite does.
	paths, err := repro.EnumerateAugmentingPaths(g, mate, *length, active, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit enumeration finds %d paths — %s\n", len(paths), verdict(int64(len(paths)) == total))
}

func verdict(ok bool) string {
	if ok {
		return "Claim B.5 verified"
	}
	return "MISMATCH (Claim B.5 violated!)"
}

// figure1Instance builds a small analogue of the paper's Figure 1: A-nodes
// 0–3 (0 and 1 unmatched), B-nodes 4–7 (4 and 7 unmatched), matching
// {2–5, 3–6}, and several overlapping length-3 augmenting paths so the
// forward counts branch and merge like the figure's black numbers.
func figure1Instance() (*repro.Graph, []int, []int) {
	b := repro.NewGraphBuilder(8)
	side := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for _, e := range [][2]int{{0, 5}, {1, 5}, {1, 6}, {2, 5}, {3, 6}, {2, 7}, {3, 7}, {2, 4}} {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	m1, _ := g.EdgeID(2, 5)
	m2, _ := g.EdgeID(3, 6)
	return g, side, []int{m1, m2}
}
