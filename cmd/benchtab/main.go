// Command benchtab regenerates the paper's Table 1 as measured rows: for
// each of the four results it reports the proven approximation factor, the
// worst ratio actually observed, and the measured round complexity on a
// standard workload, so the table's claims can be eyeballed against reality.
// Rows are data — each names a registry algorithm run through repro.Run —
// rather than hand-wired calls.
//
// With -json the same measurements are additionally written as a
// machine-readable perf record (BENCH_<date>.json by default), including
// wall-clock time and allocation counts per row, so the repository's
// performance trajectory accumulates comparable data points over time.
//
// Usage:
//
//	benchtab [-n nodes] [-trials k] [-seed s] [-json] [-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/exact"
	"repro/internal/stats"
)

// rowSpec describes one measured table row: which registry algorithm to run
// and how to score its answer against a baseline.
type rowSpec struct {
	row, label, guarantee, model string
	algo                         string
	eps                          float64 // 0 = algorithm takes no ε
	seedOffset                   uint64
	ratio                        func(g *repro.Graph, res *repro.RunResult) float64
}

// benchRow is one row of the -json perf record.
type benchRow struct {
	Row        string  `json:"row"`
	Algo       string  `json:"algo"`
	Label      string  `json:"label"`
	Guarantee  string  `json:"guarantee"`
	Model      string  `json:"model"`
	N          int     `json:"n"`
	MeanM      float64 `json:"mean_m"`
	Trials     int     `json:"trials"`
	MeanRounds float64 `json:"mean_rounds"`
	WorstRatio float64 `json:"worst_ratio"`
	WallMS     float64 `json:"wall_ms"`
	AllocsPer  uint64  `json:"allocs_per_run"`
}

// benchRecord is the top-level -json document.
type benchRecord struct {
	Date      string     `json:"date"`
	GoVersion string     `json:"go"`
	GOMAXPROC int        `json:"gomaxprocs"`
	N         int        `json:"n"`
	Trials    int        `json:"trials"`
	Seed      uint64     `json:"seed"`
	Rows      []benchRow `json:"rows"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	n := flag.Int("n", 96, "nodes per instance")
	trials := flag.Int("trials", 5, "instances per row")
	seed := flag.Uint64("seed", 1, "base seed")
	jsonOut := flag.Bool("json", false, "also write a BENCH_<date>.json perf record")
	outPath := flag.String("out", "", "perf record path (default BENCH_<date>.json; implies -json)")
	flag.Parse()
	if *trials < 1 {
		log.Fatalf("trials must be ≥ 1, got %d", *trials)
	}

	rows := []rowSpec{
		{"1", "MaxIS local-ratio (Alg 2, Luby)", "∆", "CONGEST", "maxis", 0, 3, isRatio},
		{"1", "MWM via L(G) (Thm 2.10)", "2", "CONGEST", "mwm2", 0, 4, mwmRatio},
		{"2", "MaxIS coloring (Alg 3)", "∆", "CONGEST", "maxis-det", 0, 5, isRatio},
		{"3", "FastMWM (§B.1, ε=0.5)", "2+ε", "CONGEST", "fastmwm", 0.5, 6, mwmRatio},
		{"4", "OneEpsMCM (Thm B.4, ε=0.34)", "1+ε", "LOCAL", "oneeps", 0.34, 7, cardRatio},
	}

	ratios := make([][]float64, len(rows))
	rounds := make([][]float64, len(rows))
	wall := make([]time.Duration, len(rows))
	allocs := make([]uint64, len(rows))
	var mSum float64
	for t := 0; t < *trials; t++ {
		s := *seed + uint64(t)*1000
		g := repro.GNP(*n, 8/float64(*n), s)
		repro.AssignUniformNodeWeights(g, 256, s+1)
		repro.AssignUniformEdgeWeights(g, 256, s+2)
		mSum += float64(g.M())

		for i, rs := range rows {
			opts := []repro.Option{repro.WithSeed(s + rs.seedOffset)}
			if rs.eps > 0 {
				opts = append(opts, repro.WithEps(rs.eps))
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res, err := repro.Run(rs.algo, g, opts...)
			wall[i] += time.Since(start)
			runtime.ReadMemStats(&ms1)
			allocs[i] += ms1.Mallocs - ms0.Mallocs
			if err != nil {
				log.Fatalf("%s: %v", rs.algo, err)
			}
			if r := rs.ratio(g, res); r > 0 {
				ratios[i] = append(ratios[i], r)
			}
			rounds[i] = append(rounds[i], float64(res.Cost.Rounds))
		}
	}

	table := stats.NewTable("row", "algorithm", "guarantee", "worst ratio", "mean rounds", "model")
	record := benchRecord{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		N:         *n,
		Trials:    *trials,
		Seed:      *seed,
	}
	for i, rs := range rows {
		r := stats.Summarize(ratios[i])
		d := stats.Summarize(rounds[i])
		table.AddRow(rs.row, rs.label, rs.guarantee,
			fmt.Sprintf("%.3f", r.Max), fmt.Sprintf("%.1f", d.Mean), rs.model)
		record.Rows = append(record.Rows, benchRow{
			Row:        rs.row,
			Algo:       rs.algo,
			Label:      rs.label,
			Guarantee:  rs.guarantee,
			Model:      rs.model,
			N:          *n,
			MeanM:      mSum / float64(*trials),
			Trials:     *trials,
			MeanRounds: d.Mean,
			WorstRatio: r.Max,
			WallMS:     float64(wall[i].Microseconds()) / 1000 / float64(*trials),
			AllocsPer:  allocs[i] / uint64(*trials),
		})
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *jsonOut || *outPath != "" {
		path := *outPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", record.Date)
		}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nperf record written to %s\n", path)
	}
}

func isRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Weight == 0 {
		return 0
	}
	lower := g.SetWeight(exact.GreedyWeightIS(g))
	if g.N() <= 60 {
		if _, opt, err := exact.MaxWeightIndependentSet(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(res.Weight)
}

func mwmRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Weight == 0 {
		return 0
	}
	lower := g.MatchingWeight(exact.GreedyMatching(g))
	if g.N() <= 20 {
		if _, opt, err := exact.MaxWeightMatchingBrute(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(res.Weight)
}

func cardRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Size == 0 {
		return 0
	}
	opt := float64(len(exact.MaxCardinalityMatching(g)))
	return opt / float64(res.Size)
}
