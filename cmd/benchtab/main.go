// Command benchtab regenerates the paper's Table 1 as measured rows: for
// each of the four results it reports the proven approximation factor, the
// worst ratio actually observed, and the measured round complexity on a
// standard workload, so the table's claims can be eyeballed against reality.
//
// Usage:
//
//	benchtab [-n nodes] [-trials k] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/exact"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	n := flag.Int("n", 96, "nodes per instance")
	trials := flag.Int("trials", 5, "instances per row")
	seed := flag.Uint64("seed", 1, "base seed")
	flag.Parse()

	table := stats.NewTable("row", "algorithm", "guarantee", "worst ratio", "mean rounds", "model")
	addRow := func(row, algo, guarantee string, ratios, rounds []float64, model string) {
		r := stats.Summarize(ratios)
		d := stats.Summarize(rounds)
		table.AddRow(row, algo, guarantee, fmt.Sprintf("%.3f", r.Max), fmt.Sprintf("%.1f", d.Mean), model)
	}

	var r1Ratio, r1Rounds, m1Ratio, m1Rounds []float64
	var r2Ratio, r2Rounds []float64
	var r3Ratio, r3Rounds []float64
	var r4Ratio, r4Rounds []float64
	for t := 0; t < *trials; t++ {
		s := *seed + uint64(t)*1000

		// Row 1: MaxIS ∆-approx (randomized) + MWM 2-approx.
		g := repro.GNP(*n, 8/float64(*n), s)
		repro.AssignUniformNodeWeights(g, 256, s+1)
		repro.AssignUniformEdgeWeights(g, 256, s+2)
		res, err := repro.MaxIS(g, repro.WithSeed(s+3))
		if err != nil {
			log.Fatal(err)
		}
		r1Ratio = append(r1Ratio, isRatio(g, res.Weight))
		r1Rounds = append(r1Rounds, float64(res.Cost.Rounds))

		mwm, err := repro.MWM2(g, repro.WithSeed(s+4))
		if err != nil {
			log.Fatal(err)
		}
		m1Ratio = append(m1Ratio, mwmRatio(g, mwm.Weight))
		m1Rounds = append(m1Rounds, float64(mwm.Cost.Rounds))

		// Row 2: deterministic MaxIS (Algorithm 3).
		det, err := repro.MaxISDeterministic(g, repro.WithSeed(s+5))
		if err != nil {
			log.Fatal(err)
		}
		r2Ratio = append(r2Ratio, isRatio(g, det.Weight))
		r2Rounds = append(r2Rounds, float64(det.Cost.Rounds))

		// Row 3: (2+ε)-approx MWM.
		fw, err := repro.FastMWM(g, 0.5, repro.WithSeed(s+6))
		if err != nil {
			log.Fatal(err)
		}
		r3Ratio = append(r3Ratio, mwmRatio(g, fw.Weight))
		r3Rounds = append(r3Rounds, float64(fw.Cost.Rounds))

		// Row 4: (1+ε)-approx MCM.
		fc, err := repro.OneEpsMCM(g, 0.34, repro.WithSeed(s+7))
		if err != nil {
			log.Fatal(err)
		}
		opt := float64(len(exact.MaxCardinalityMatching(g)))
		if len(fc.Edges) > 0 {
			r4Ratio = append(r4Ratio, opt/float64(len(fc.Edges)))
		}
		r4Rounds = append(r4Rounds, float64(fc.Cost.Rounds))
	}

	addRow("1", "MaxIS local-ratio (Alg 2, Luby)", "∆", r1Ratio, r1Rounds, "CONGEST")
	addRow("1", "MWM via L(G) (Thm 2.10)", "2", m1Ratio, m1Rounds, "CONGEST")
	addRow("2", "MaxIS coloring (Alg 3)", "∆", r2Ratio, r2Rounds, "CONGEST")
	addRow("3", "FastMWM (§B.1, ε=0.5)", "2+ε", r3Ratio, r3Rounds, "CONGEST")
	addRow("4", "OneEpsMCM (Thm B.4, ε=0.34)", "1+ε", r4Ratio, r4Rounds, "LOCAL")

	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func isRatio(g *repro.Graph, got int64) float64 {
	if got == 0 {
		return 0
	}
	lower := g.SetWeight(exact.GreedyWeightIS(g))
	if g.N() <= 60 {
		if _, opt, err := exact.MaxWeightIndependentSet(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(got)
}

func mwmRatio(g *repro.Graph, got int64) float64 {
	if got == 0 {
		return 0
	}
	lower := g.MatchingWeight(exact.GreedyMatching(g))
	if g.N() <= 20 {
		if _, opt, err := exact.MaxWeightMatchingBrute(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(got)
}
