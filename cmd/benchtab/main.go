// Command benchtab regenerates the paper's Table 1 as measured rows: for
// each of the four results it reports the proven approximation factor, the
// worst ratio actually observed, and the measured round complexity on a
// standard workload, so the table's claims can be eyeballed against reality.
// Rows are data — each names a registry algorithm run through repro.Run —
// rather than hand-wired calls.
//
// With -json the same measurements are additionally written as a
// machine-readable perf record (BENCH_<date>.json by default), including
// wall-clock time and allocation counts per row, so the repository's
// performance trajectory accumulates comparable data points over time. The
// record also carries a separate wal section — append and fsync latency of
// the durable coordinator's write-ahead log on this machine — which is
// informational only and never part of the -compare gate.
//
// With -compare <file> the fresh measurements are diffed against a previous
// record: per-row wall_ms and allocs_per_run deltas are printed, and the
// process exits non-zero if any row's allocs_per_run regressed by more than
// -threshold percent. Allocation counts are deterministic for a fixed
// (n, trials, seed), which is what makes them a CI-enforceable gate where
// wall-clock (reported, but noisy on shared runners) is not.
//
// With -scale the tool switches from the paper's table to a single-worker
// scaling sweep: -n takes a comma list with k/M suffixes (96,10k,1M), each
// -algos algorithm runs once per size over a sparse G(n, 8/n) instance (or
// over one -load graph file), and each (algo, n) cell reports wall-clock,
// allocations, peak RSS, rounds and messages. -comparescale gates a fresh
// sweep against a committed record (BENCH_scale_baseline.json): rounds must
// match exactly, allocations within -threshold percent; cells are matched by
// (algo, n) so a CI subset run can gate against the full baseline.
//
// Usage:
//
//	benchtab [-n nodes] [-trials k] [-seed s] [-json] [-out file]
//	         [-compare BENCH_baseline.json] [-threshold pct]
//	benchtab -scale [-n 96,10k,1M] [-algos maxis,mwm2] [-load graph.el]
//	         [-out BENCH_scale_baseline.json]
//	         [-comparescale BENCH_scale_baseline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/exact"
	"repro/internal/stats"
	"repro/internal/wal"
)

// rowSpec describes one measured table row: which registry algorithm to run
// and how to score its answer against a baseline.
type rowSpec struct {
	row, label, guarantee, model string
	algo                         string
	eps                          float64 // 0 = algorithm takes no ε
	seedOffset                   uint64
	ratio                        func(g *repro.Graph, res *repro.RunResult) float64
}

// benchRow is one row of the -json perf record.
type benchRow struct {
	Row        string  `json:"row"`
	Algo       string  `json:"algo"`
	Label      string  `json:"label"`
	Guarantee  string  `json:"guarantee"`
	Model      string  `json:"model"`
	N          int     `json:"n"`
	MeanM      float64 `json:"mean_m"`
	Trials     int     `json:"trials"`
	MeanRounds float64 `json:"mean_rounds"`
	// MeanMessages averages Cost.Messages per trial — the engine-telemetry
	// companion to MeanRounds, so BENCH records track message complexity too.
	MeanMessages float64 `json:"mean_messages"`
	WorstRatio   float64 `json:"worst_ratio"`
	WallMS       float64 `json:"wall_ms"`
	AllocsPer    uint64  `json:"allocs_per_run"`
}

// walBench is the WAL micro-benchmark section of the -json record. It lives
// beside Rows, not in it: -compare matches rows by algorithm and fails on
// unmatched entries, and the WAL numbers are informational (fsync latency is
// a property of the runner's disk, not of this repository's code), so they
// must never trip the allocation gate or force a baseline regeneration.
type walBench struct {
	Records      int `json:"records"`
	PayloadBytes int `json:"payload_bytes"`
	SyncEvery    int `json:"sync_every"`
	// AppendNsOp is the group-commit append path (Sync every SyncEvery
	// records) — the batch ledger's cadence.
	AppendNsOp float64 `json:"append_ns_op"`
	AppendMBps float64 `json:"append_mb_s"`
	// AppendSyncNsOp fsyncs per record — the store's put commit point.
	AppendSyncNsOp float64 `json:"appendsync_ns_op"`
}

// benchRecord is the top-level -json document.
type benchRecord struct {
	Date      string     `json:"date"`
	GoVersion string     `json:"go"`
	GOMAXPROC int        `json:"gomaxprocs"`
	N         int        `json:"n"`
	Trials    int        `json:"trials"`
	Seed      uint64     `json:"seed"`
	Rows      []benchRow `json:"rows"`
	WAL       *walBench  `json:"wal,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	nFlag := flag.String("n", "96", "nodes per instance; -scale mode takes a comma list with k/M suffixes (96,10k,1M)")
	trials := flag.Int("trials", 5, "instances per row (table mode)")
	seed := flag.Uint64("seed", 1, "base seed")
	jsonOut := flag.Bool("json", false, "also write a BENCH_<date>.json perf record")
	outPath := flag.String("out", "", "perf record path (default BENCH_<date>.json; implies -json)")
	compare := flag.String("compare", "", "previous perf record to diff against; exit 1 on allocs_per_run regression beyond -threshold")
	threshold := flag.Float64("threshold", 25, "allowed allocs_per_run regression for -compare/-comparescale, in percent")
	scale := flag.Bool("scale", false, "scaling-table mode: run each -algos algorithm once per -n size over sparse G(n, 8/n) instances; reports wall/allocs/peak-RSS/rounds/messages per cell")
	algosFlag := flag.String("algos", "maxis,mwm2", "comma-separated algorithms for -scale mode")
	loadPath := flag.String("load", "", "-scale mode: benchmark this graph file (.el/.txt/.mtx/.rgd1/.rgb1) instead of generating; overrides -n")
	compareScale := flag.String("comparescale", "", "-scale mode: gate against this scale record — rounds must match exactly, allocs within -threshold; cells matched by (algo, n), unmatched cells skipped")
	flag.Parse()
	if *trials < 1 {
		log.Fatalf("trials must be ≥ 1, got %d", *trials)
	}

	sizes, err := parseSizes(*nFlag)
	if err != nil {
		log.Fatalf("-n: %v", err)
	}
	if *scale {
		cfg := scaleConfig{
			sizes:     sizes,
			seed:      *seed,
			loadPath:  *loadPath,
			jsonOut:   *jsonOut,
			outPath:   *outPath,
			compare:   *compareScale,
			threshold: *threshold,
		}
		for _, a := range strings.Split(*algosFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.algos = append(cfg.algos, a)
			}
		}
		if len(cfg.algos) == 0 {
			log.Fatal("-scale needs at least one algorithm in -algos")
		}
		if err := runScale(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *compareScale != "" || *loadPath != "" {
		log.Fatal("-comparescale and -load only apply in -scale mode")
	}
	if len(sizes) != 1 {
		log.Fatalf("table mode takes a single -n size (got %q); use -scale for a size sweep", *nFlag)
	}
	n := &sizes[0]

	rows := []rowSpec{
		{"1", "MaxIS local-ratio (Alg 2, Luby)", "∆", "CONGEST", "maxis", 0, 3, isRatio},
		{"1", "MWM via L(G) (Thm 2.10)", "2", "CONGEST", "mwm2", 0, 4, mwmRatio},
		{"2", "MaxIS coloring (Alg 3)", "∆", "CONGEST", "maxis-det", 0, 5, isRatio},
		{"3", "FastMWM (§B.1, ε=0.5)", "2+ε", "CONGEST", "fastmwm", 0.5, 6, mwmRatio},
		{"4", "OneEpsMCM (Thm B.4, ε=0.34)", "1+ε", "LOCAL", "oneeps", 0.34, 7, cardRatio},
	}

	ratios := make([][]float64, len(rows))
	rounds := make([][]float64, len(rows))
	messages := make([][]float64, len(rows))
	wall := make([]time.Duration, len(rows))
	allocs := make([]uint64, len(rows))
	var mSum float64
	for t := 0; t < *trials; t++ {
		s := *seed + uint64(t)*1000
		g := repro.GNP(*n, 8/float64(*n), s)
		repro.AssignUniformNodeWeights(g, 256, s+1)
		repro.AssignUniformEdgeWeights(g, 256, s+2)
		mSum += float64(g.M())

		for i, rs := range rows {
			opts := []repro.Option{repro.WithSeed(s + rs.seedOffset)}
			if rs.eps > 0 {
				opts = append(opts, repro.WithEps(rs.eps))
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res, err := repro.Run(rs.algo, g, opts...)
			wall[i] += time.Since(start)
			runtime.ReadMemStats(&ms1)
			allocs[i] += ms1.Mallocs - ms0.Mallocs
			if err != nil {
				log.Fatalf("%s: %v", rs.algo, err)
			}
			if r := rs.ratio(g, res); r > 0 {
				ratios[i] = append(ratios[i], r)
			}
			rounds[i] = append(rounds[i], float64(res.Cost.Rounds))
			messages[i] = append(messages[i], float64(res.Cost.Messages))
		}
	}

	table := stats.NewTable("row", "algorithm", "guarantee", "worst ratio", "mean rounds", "mean msgs", "model")
	record := benchRecord{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		N:         *n,
		Trials:    *trials,
		Seed:      *seed,
	}
	for i, rs := range rows {
		r := stats.Summarize(ratios[i])
		d := stats.Summarize(rounds[i])
		m := stats.Summarize(messages[i])
		table.AddRow(rs.row, rs.label, rs.guarantee,
			fmt.Sprintf("%.3f", r.Max), fmt.Sprintf("%.1f", d.Mean),
			fmt.Sprintf("%.0f", m.Mean), rs.model)
		record.Rows = append(record.Rows, benchRow{
			Row:          rs.row,
			Algo:         rs.algo,
			Label:        rs.label,
			Guarantee:    rs.guarantee,
			Model:        rs.model,
			N:            *n,
			MeanM:        mSum / float64(*trials),
			Trials:       *trials,
			MeanRounds:   d.Mean,
			MeanMessages: m.Mean,
			WorstRatio:   r.Max,
			WallMS:       float64(wall[i].Microseconds()) / 1000 / float64(*trials),
			AllocsPer:    allocs[i] / uint64(*trials),
		})
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if wb, err := measureWAL(); err != nil {
		// The WAL row is informational; a read-only or full temp filesystem
		// should not fail the table run.
		log.Printf("wal micro-benchmark skipped: %v", err)
	} else {
		record.WAL = wb
		fmt.Printf("\nwal: append %.0f ns/op (%.1f MB/s, sync every %d), appendsync %.0f ns/op (%d B payloads)\n",
			wb.AppendNsOp, wb.AppendMBps, wb.SyncEvery, wb.AppendSyncNsOp, wb.PayloadBytes)
	}
	if *jsonOut || *outPath != "" {
		path := *outPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", record.Date)
		}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nperf record written to %s\n", path)
	}
	if *compare != "" {
		if err := compareRecords(*compare, &record, *threshold); err != nil {
			log.Fatal(err)
		}
	}
}

// measureWAL times the two WAL commit paths the durable coordinator uses —
// group-commit Append+Sync (the batch ledger's cadence) and per-record
// AppendSync (the graph store's put commit point) — against a throwaway log
// in the OS temp directory. The numbers characterize the runner's disk as
// much as the code, so they land in the record's separate wal section, never
// in Rows, and are never gated by -compare.
func measureWAL() (*walBench, error) {
	dir, err := os.MkdirTemp("", "benchtab-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer l.Close()

	const (
		records   = 4096
		payload   = 256
		syncEvery = 64
		syncRecs  = 128
	)
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < records; i++ {
		if err := l.Append(1, buf); err != nil {
			return nil, err
		}
		if (i+1)%syncEvery == 0 {
			if err := l.Sync(); err != nil {
				return nil, err
			}
		}
	}
	appendDur := time.Since(start)

	start = time.Now()
	for i := 0; i < syncRecs; i++ {
		if err := l.AppendSync(1, buf); err != nil {
			return nil, err
		}
	}
	syncDur := time.Since(start)

	return &walBench{
		Records:        records,
		PayloadBytes:   payload,
		SyncEvery:      syncEvery,
		AppendNsOp:     float64(appendDur.Nanoseconds()) / records,
		AppendMBps:     float64(records*payload) / appendDur.Seconds() / (1 << 20),
		AppendSyncNsOp: float64(syncDur.Nanoseconds()) / syncRecs,
	}, nil
}

// compareRecords diffs the fresh record against a previous one and returns an
// error if any row's allocs_per_run regressed beyond threshold percent.
func compareRecords(path string, cur *benchRecord, threshold float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev benchRecord
	if err := json.Unmarshal(blob, &prev); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if prev.N != cur.N || prev.Trials != cur.Trials || prev.Seed != cur.Seed {
		// allocs_per_run scales with the workload, so gating across different
		// configurations would fail (or worse, pass) spuriously; refuse.
		return fmt.Errorf("records not comparable: baseline (n=%d trials=%d seed=%d) vs current (n=%d trials=%d seed=%d); rerun with matching flags",
			prev.N, prev.Trials, prev.Seed, cur.N, cur.Trials, cur.Seed)
	}
	prevByAlgo := make(map[string]benchRow, len(prev.Rows))
	for _, r := range prev.Rows {
		prevByAlgo[r.Algo] = r
	}
	fmt.Printf("\ncomparison against %s (%s):\n", path, prev.Date)
	fmt.Printf("%-12s %12s %12s %8s %14s %14s %9s\n",
		"algo", "wall_ms", "wall_ms'", "Δwall", "allocs", "allocs'", "Δallocs")
	var worstAlgo string
	var worstPct float64
	var unmatched []string
	for _, r := range cur.Rows {
		p, ok := prevByAlgo[r.Algo]
		if !ok {
			fmt.Printf("%-12s %51s\n", r.Algo, "(no baseline row)")
			unmatched = append(unmatched, r.Algo)
			continue
		}
		delete(prevByAlgo, r.Algo)
		wallPct := pctDelta(float64(r.WallMS), float64(p.WallMS))
		allocPct := pctDelta(float64(r.AllocsPer), float64(p.AllocsPer))
		fmt.Printf("%-12s %12.3f %12.3f %+7.1f%% %14d %14d %+8.1f%%\n",
			r.Algo, p.WallMS, r.WallMS, wallPct, p.AllocsPer, r.AllocsPer, allocPct)
		if allocPct > worstPct {
			worstPct, worstAlgo = allocPct, r.Algo
		}
	}
	for algo := range prevByAlgo {
		fmt.Printf("%-12s %51s\n", algo, "(baseline row missing from current run)")
		unmatched = append(unmatched, algo)
	}
	if len(unmatched) > 0 {
		// An unmatched row means the gate cannot gate it; fail loudly so a
		// renamed or dropped algorithm forces a baseline regeneration rather
		// than silently escaping the regression check.
		return fmt.Errorf("rows without a counterpart in both records: %v; regenerate the baseline (-out) alongside the row change", unmatched)
	}
	if worstPct > threshold {
		return fmt.Errorf("allocs_per_run regression: %s is %.1f%% above the baseline (threshold %.1f%%)", worstAlgo, worstPct, threshold)
	}
	fmt.Printf("allocs_per_run within %.1f%% of baseline (worst: %+.1f%%)\n", threshold, worstPct)
	return nil
}

// pctDelta returns the percent change from prev to cur. Growth from a zero
// baseline is +Inf — above any finite threshold — so a row that once reached
// zero allocations can never silently regress past the gate.
func pctDelta(cur, prev float64) float64 {
	if prev == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - prev) / prev * 100
}

func isRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Weight == 0 {
		return 0
	}
	lower := g.SetWeight(exact.GreedyWeightIS(g))
	if g.N() <= 60 {
		if _, opt, err := exact.MaxWeightIndependentSet(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(res.Weight)
}

func mwmRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Weight == 0 {
		return 0
	}
	lower := g.MatchingWeight(exact.GreedyMatching(g))
	if g.N() <= 20 {
		if _, opt, err := exact.MaxWeightMatchingBrute(g); err == nil {
			lower = opt
		}
	}
	return float64(lower) / float64(res.Weight)
}

func cardRatio(g *repro.Graph, res *repro.RunResult) float64 {
	if res.Size == 0 {
		return 0
	}
	opt := float64(len(exact.MaxCardinalityMatching(g)))
	return opt / float64(res.Size)
}
