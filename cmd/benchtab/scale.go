package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// This file is benchtab's -scale mode: instead of the paper's Table 1 at one
// size, it sweeps a list of graph sizes (-n 96,10k,1M) and runs each -algos
// algorithm once per size over a sparse G(n, 8/n) instance, reporting
// wall-clock, allocation count, peak RSS, round count and message count per
// (algo, n) cell. The record it writes (-out) is the single-worker scaling
// baseline BENCH_scale_baseline.json; -comparescale gates fresh runs against
// it: rounds must match exactly (the determinism contract — a changed round
// count means the engine's schedule drifted) and allocs_per_run must stay
// within -threshold percent. Cells are matched by (algo, n), and cells
// present in only one record are reported but not gated, so CI can run a
// small-size subset against the full committed baseline.

// scaleRow is one (algo, n) cell of the scale record.
type scaleRow struct {
	Algo     string  `json:"algo"`
	N        int     `json:"n"`
	M        int     `json:"m"`
	Rounds   int     `json:"rounds"`
	Messages int     `json:"messages"`
	WallMS   float64 `json:"wall_ms"`
	Allocs   uint64  `json:"allocs_per_run"`
	// PeakRSSMB is the process high-water mark after the cell ran: a ceiling
	// over everything executed so far, monotone across rows (-1 when the
	// platform cannot report it). The first cell at each new size is the
	// honest per-size reading.
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// scaleRecord is the top-level -scale JSON document.
type scaleRecord struct {
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOMAXPROC int    `json:"gomaxprocs"`
	Seed      uint64 `json:"seed"`
	// Source names the workload: "gnp-sparse deg≈8" for generated sweeps or
	// the -load path.
	Source string     `json:"source"`
	Rows   []scaleRow `json:"rows"`
}

// scaleConfig carries the -scale flags into runScale.
type scaleConfig struct {
	sizes     []int
	algos     []string
	seed      uint64
	loadPath  string
	jsonOut   bool
	outPath   string
	compare   string
	threshold float64
}

// parseSizes parses a comma-separated size list with k (×10³) and M (×10⁶)
// suffixes: "96,10k,1M" → [96, 10000, 1000000].
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(tok, "k"), strings.HasSuffix(tok, "K"):
			mult, tok = 1_000, tok[:len(tok)-1]
		case strings.HasSuffix(tok, "M"):
			mult, tok = 1_000_000, tok[:len(tok)-1]
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q: want a positive integer with optional k/M suffix", tok)
		}
		out = append(out, v*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -n size list")
	}
	return out, nil
}

// scaleGraph builds the standard scaling workload at size n: sparse
// G(n, 8/n) via the Batagelj–Brandes skip generator (O(n+m), so generating
// the instance never dominates measuring it) with uniform node and edge
// weights in [1, 256]. Seeds derive only from (seed, n), so every run of the
// same sweep measures identical instances.
func scaleGraph(n int, seed uint64) *graph.Graph {
	base := seed + uint64(n)*1_000_003
	g := graph.GNPSparse(n, 8/float64(n), rng.New(base))
	graph.AssignUniformNodeWeights(g, 256, rng.New(base+1))
	graph.AssignUniformEdgeWeights(g, 256, rng.New(base+2))
	return g
}

// benchScaleCell runs one algorithm once over g and measures the cell.
func benchScaleCell(g *graph.Graph, algo string, seed uint64) (scaleRow, error) {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := repro.Run(algo, g, repro.WithSeed(seed))
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return scaleRow{}, fmt.Errorf("%s at n=%d: %w", algo, g.N(), err)
	}
	row := scaleRow{
		Algo:      algo,
		N:         g.N(),
		M:         g.M(),
		Rounds:    res.Cost.Rounds,
		Messages:  res.Cost.Messages,
		WallMS:    float64(wall.Microseconds()) / 1000,
		Allocs:    ms1.Mallocs - ms0.Mallocs,
		PeakRSSMB: -1,
	}
	if rss := stats.PeakRSS(); rss >= 0 {
		row.PeakRSSMB = float64(rss) / (1 << 20)
	}
	return row, nil
}

// runScale drives the -scale sweep: build each instance, run each algorithm
// once, render the table, and optionally write/gate the JSON record.
func runScale(cfg scaleConfig) error {
	record := scaleRecord{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		Seed:      cfg.seed,
		Source:    "gnp-sparse deg≈8",
	}

	var instances []*graph.Graph
	if cfg.loadPath != "" {
		g, err := graph.ReadFile(cfg.loadPath, graph.ReadOptions{SkipSelfLoops: true, DedupEdges: true})
		if err != nil {
			return err
		}
		record.Source = cfg.loadPath
		instances = []*graph.Graph{g}
	}

	table := stats.NewTable("algo", "n", "m", "rounds", "msgs", "wall ms", "allocs", "peak rss MB")
	runCell := func(g *graph.Graph, algo string) error {
		row, err := benchScaleCell(g, algo, cfg.seed)
		if err != nil {
			return err
		}
		record.Rows = append(record.Rows, row)
		rss := "n/a"
		if row.PeakRSSMB >= 0 {
			rss = fmt.Sprintf("%.1f", row.PeakRSSMB)
		}
		table.AddRow(row.Algo, fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.M),
			fmt.Sprintf("%d", row.Rounds), fmt.Sprintf("%d", row.Messages),
			fmt.Sprintf("%.1f", row.WallMS), fmt.Sprintf("%d", row.Allocs), rss)
		return nil
	}
	if instances != nil {
		for _, algo := range cfg.algos {
			if err := runCell(instances[0], algo); err != nil {
				return err
			}
		}
	} else {
		for _, n := range cfg.sizes {
			g := scaleGraph(n, cfg.seed)
			for _, algo := range cfg.algos {
				if err := runCell(g, algo); err != nil {
					return err
				}
			}
			// Drop the instance before building the next size so peak RSS
			// reflects one resident graph at a time.
			g = nil
			_ = g
			runtime.GC()
		}
	}

	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if cfg.jsonOut || cfg.outPath != "" {
		path := cfg.outPath
		if path == "" {
			path = fmt.Sprintf("BENCH_scale_%s.json", record.Date)
		}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nscale record written to %s\n", path)
	}
	if cfg.compare != "" {
		return compareScaleRecords(cfg.compare, &record, cfg.threshold)
	}
	return nil
}

// compareScaleRecords gates a fresh scale record against a committed
// baseline. Cells are matched by (algo, n); unmatched cells on either side
// are reported but not gated, so a CI subset run (-n 96,10k) can gate
// against the full committed baseline. Round counts must match exactly —
// the engine is deterministic for a fixed (algo, n, seed), so any drift
// means the schedule changed and the baseline must be regenerated
// deliberately. allocs_per_run may move within threshold percent.
func compareScaleRecords(path string, cur *scaleRecord, threshold float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev scaleRecord
	if err := json.Unmarshal(blob, &prev); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if prev.Seed != cur.Seed {
		return fmt.Errorf("records not comparable: baseline seed %d vs current %d", prev.Seed, cur.Seed)
	}
	type cellKey struct {
		algo string
		n    int
	}
	prevBy := make(map[cellKey]scaleRow, len(prev.Rows))
	for _, r := range prev.Rows {
		prevBy[cellKey{r.Algo, r.N}] = r
	}
	fmt.Printf("\nscale comparison against %s (%s):\n", path, prev.Date)
	fmt.Printf("%-10s %10s %10s %10s %8s %14s %14s %9s\n",
		"algo", "n", "rounds", "rounds'", "Δwall", "allocs", "allocs'", "Δallocs")
	var worst cellKey
	var worstPct float64
	matched := 0
	for _, r := range cur.Rows {
		k := cellKey{r.Algo, r.N}
		p, ok := prevBy[k]
		if !ok {
			fmt.Printf("%-10s %10d %46s\n", r.Algo, r.N, "(not in baseline, skipped)")
			continue
		}
		matched++
		if p.Rounds != r.Rounds {
			return fmt.Errorf("determinism drift: %s at n=%d ran %d rounds, baseline %d — regenerate the baseline only if the schedule change is intentional",
				r.Algo, r.N, r.Rounds, p.Rounds)
		}
		allocPct := pctDelta(float64(r.Allocs), float64(p.Allocs))
		fmt.Printf("%-10s %10d %10d %10d %+7.1f%% %14d %14d %+8.1f%%\n",
			r.Algo, r.N, p.Rounds, r.Rounds, pctDelta(r.WallMS, p.WallMS), p.Allocs, r.Allocs, allocPct)
		if allocPct > worstPct {
			worstPct, worst = allocPct, k
		}
	}
	if matched == 0 {
		return fmt.Errorf("no (algo, n) cells in common with %s — nothing gated", path)
	}
	if worstPct > threshold {
		return fmt.Errorf("allocs_per_run regression: %s at n=%d is %.1f%% above the baseline (threshold %.1f%%)",
			worst.algo, worst.n, worstPct, threshold)
	}
	fmt.Printf("%d cells gated: rounds exact, allocs within %.1f%% (worst %+.1f%%)\n", matched, threshold, worstPct)
	return nil
}
