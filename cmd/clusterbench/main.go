// Command clusterbench measures the cluster fast path: it spins up an
// in-process fleet of real single-node reprod workers (each behind its own
// httptest server, exactly as internal/cluster's harness does), runs the
// same 256-cell seed-sweep batch through a coordinator twice — once with
// grouped dispatch (the default: job groups over the binary wire codec) and
// once with the legacy one-job-per-cell JSON dispatch (Config.PerCell) — and
// reports end-to-end cells/sec for both, plus their ratio. Each mode gets a
// fresh fleet so result caches cannot skew the comparison.
//
// With -json the measurements are written as a machine-readable perf record
// (BENCH_cluster_<date>.json by default). With -compare <file> the fresh
// speedup is diffed against a previous record and the process exits non-zero
// when it regressed by more than -threshold percent. The speedup ratio — not
// raw cells/sec — is the gated quantity: it is a property of the dispatch
// path, largely independent of the runner's absolute speed, which is what
// makes it CI-enforceable where wall-clock is not.
//
// Usage:
//
//	clusterbench [-workers n] [-seeds k] [-json] [-out file]
//	             [-compare BENCH_cluster_baseline.json] [-threshold pct]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
)

// record is the -json perf document.
type record struct {
	Date      string  `json:"date"`
	GoVersion string  `json:"go"`
	GOMAXPROC int     `json:"gomaxprocs"`
	Workers   int     `json:"workers"`
	Cells     int     `json:"cells"`
	GroupedCS float64 `json:"grouped_cells_per_sec"`
	PerCellCS float64 `json:"percell_cells_per_sec"`
	Speedup   float64 `json:"speedup"`
}

// fleet is one disposable in-process cluster: n workers plus a coordinator.
type fleet struct {
	coord   *cluster.Coordinator
	cleanup []func()
}

func (f *fleet) close() {
	f.coord.Close()
	for _, fn := range f.cleanup {
		fn()
	}
}

func newFleet(n int, perCell bool) (*fleet, error) {
	f := &fleet{}
	urls := make([]string, n)
	for i := range urls {
		svc := service.New(service.Config{Workers: 2, QueueSize: 1024})
		st := store.New(store.Config{})
		batches := service.NewBatches(svc, st, service.BatchConfig{})
		ts := httptest.NewServer(httpapi.NewHandler(svc, st, batches))
		urls[i] = ts.URL
		f.cleanup = append(f.cleanup, ts.Close, svc.Close)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:        urls,
		Window:         4,
		RequestTimeout: 30 * time.Second,
		PerCell:        perCell,
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.coord = coord
	return f, nil
}

// bestOf runs the workload reps times and keeps the fastest run. Throughput
// here is noisy in exactly one direction — a cell completing just after a
// poll tick waits out the whole next interval — so the max is the cleanest
// estimate of what the dispatch path can do, and the one stable enough to
// gate CI on.
func bestOf(reps, workers, seeds int, perCell bool) (float64, int, error) {
	var best float64
	var cells int
	for r := 0; r < reps; r++ {
		cs, n, err := runBatch(workers, seeds, perCell)
		if err != nil {
			return 0, 0, err
		}
		best = max(best, cs)
		cells = n
	}
	return best, cells, nil
}

// runBatch executes the benchmark workload — 2 graphs × 2 algorithms × seeds
// seed-sweep cells — on a fresh fleet and returns cells/sec.
func runBatch(workers, seeds int, perCell bool) (float64, int, error) {
	f, err := newFleet(workers, perCell)
	if err != nil {
		return 0, 0, err
	}
	defer f.close()

	for i, name := range []string{"cb-a", "cb-b"} {
		src := store.Source{Gen: "gnp", GenParams: registry.GenParams{
			N: 16 + 8*i, P: 0.2, Seed: uint64(40 + i), MaxW: 64,
		}}
		if _, _, err := f.coord.PutGraph(name, src); err != nil {
			return 0, 0, err
		}
	}
	seedList := make([]uint64, seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	spec := service.BatchSpec{
		Graphs: []string{"cb-a", "cb-b"},
		Algos:  []string{"maxis", "mwm2"},
		Seeds:  seedList,
	}

	start := time.Now()
	v, err := f.coord.SubmitBatch(spec)
	if err != nil {
		return 0, 0, err
	}
	for {
		cur, ok := f.coord.WaitBatch(v.ID, 10*time.Second)
		if !ok {
			return 0, 0, fmt.Errorf("batch %s vanished", v.ID)
		}
		if cur.State.Terminal() {
			if cur.Done != cur.Total {
				return 0, 0, fmt.Errorf("batch %s: %d/%d done, %d failed (%s)",
					v.ID, cur.Done, cur.Total, cur.Failed, firstError(cur))
			}
			elapsed := time.Since(start)
			return float64(cur.Total) / elapsed.Seconds(), cur.Total, nil
		}
	}
}

func firstError(v service.BatchView) string {
	for _, c := range v.Cells {
		if c.Error != "" {
			return c.Error
		}
	}
	return "no cell error"
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clusterbench: ")
	workers := flag.Int("workers", 3, "in-process workers in the fleet")
	seeds := flag.Int("seeds", 64, "seeds per (graph, algo) axis — cells = 4×seeds")
	reps := flag.Int("reps", 3, "runs per mode; the fastest is reported")
	jsonOut := flag.Bool("json", false, "also write a BENCH_cluster_<date>.json perf record")
	outPath := flag.String("out", "", "perf record path (default BENCH_cluster_<date>.json; implies -json)")
	compare := flag.String("compare", "", "previous perf record to diff against; exit 1 on speedup regression beyond -threshold")
	threshold := flag.Float64("threshold", 20, "allowed speedup regression for -compare, in percent")
	flag.Parse()

	grouped, cells, err := bestOf(*reps, *workers, *seeds, false)
	if err != nil {
		log.Fatalf("grouped run: %v", err)
	}
	perCell, _, err := bestOf(*reps, *workers, *seeds, true)
	if err != nil {
		log.Fatalf("per-cell run: %v", err)
	}
	speedup := grouped / perCell

	fmt.Printf("cells          %d (over %d workers)\n", cells, *workers)
	fmt.Printf("grouped        %.1f cells/sec\n", grouped)
	fmt.Printf("per-cell       %.1f cells/sec\n", perCell)
	fmt.Printf("speedup        %.2fx\n", speedup)

	rec := record{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		Workers:   *workers,
		Cells:     cells,
		GroupedCS: grouped,
		PerCellCS: perCell,
		Speedup:   speedup,
	}
	if *jsonOut || *outPath != "" {
		path := *outPath
		if path == "" {
			path = "BENCH_cluster_" + rec.Date + ".json"
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	if *compare != "" {
		buf, err := os.ReadFile(*compare)
		if err != nil {
			log.Fatal(err)
		}
		var base record
		if err := json.Unmarshal(buf, &base); err != nil {
			log.Fatalf("parsing %s: %v", *compare, err)
		}
		delta := 100 * (speedup - base.Speedup) / base.Speedup
		fmt.Printf("baseline       %.2fx (%s), delta %+.1f%%\n", base.Speedup, base.Date, delta)
		if delta < -*threshold {
			log.Fatalf("speedup regressed %.1f%% (threshold %.0f%%): %.2fx -> %.2fx",
				-delta, *threshold, base.Speedup, speedup)
		}
	}
}
